//! A small SQL engine: `SELECT` with projections, aggregates, `WHERE`,
//! `GROUP BY`, `ORDER BY` and `LIMIT` over columnar tables.
//!
//! This is the "SQL command … submitted by web console" path of Figure 4.
//! The dialect is deliberately small but real — tokenizer, recursive-descent
//! parser, and a grouped-aggregate executor — covering what the TitAnt
//! offline stage needs: filtering transaction logs by day, counting fraud
//! reports per user, aggregating transfer pairs.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := SELECT proj (',' proj)* FROM ident [join]
//!            [WHERE pred] [GROUP BY ident (',' ident)*]
//!            [ORDER BY ident [ASC|DESC]] [LIMIT int]
//! join    := JOIN ident ON qual '=' qual    -- inner equi-join
//! qual    := ident '.' ident                -- table.column
//! proj    := '*' | ident | agg '(' (ident|'*') ')'
//! agg     := COUNT | SUM | AVG | MIN | MAX
//! pred    := cmp (AND cmp | OR cmp)*        -- left-assoc, AND binds tighter
//! cmp     := ident op literal | ident IS [NOT] NULL
//! op      := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
//! literal := int | float | 'string' | TRUE | FALSE
//! ```
//!
//! ## Execution model
//!
//! The executor is factored into **decomposable pieces** so the distributed
//! coordinator/worker engine ([`crate::distsql`]) can reuse it verbatim:
//! [`plan`] validates and resolves a query against a schema once,
//! [`execute_partial`] runs the planned scan over any row range and emits a
//! mergeable [`Partial`] (projected rows, or per-group [`AggState`]s), and
//! [`finish`] merges partials and applies ORDER BY/LIMIT. Single-process
//! execution is literally the one-segment case of the same pipeline, which
//! is what makes distributed results byte-identical by construction:
//!
//! * aggregates keep decomposable states — COUNT→sum, SUM→exact sum
//!   ([`crate::exact::ExactSum`], so float merge order cannot change the
//!   result), AVG→(exact sum, count), MIN/MAX→running extremum with a
//!   **first-wins** rule on `sql_cmp`-equal ties;
//! * grouped merge walks the existing `BTreeMap` key order;
//! * ORDER BY/LIMIT is bounded top-K with a documented deterministic
//!   tie-break: equal sort keys preserve **input row order** (stable).

use crate::exact::ExactSum;
use crate::table::{Schema, Table};
use crate::value::{ColumnType, Value};
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;
use std::ops::Range;

/// SQL layer errors.
#[derive(Debug, PartialEq)]
pub enum SqlError {
    /// Tokenizer/parser failure with context.
    Parse(String),
    /// Referenced column does not exist.
    UnknownColumn(String),
    /// Projection mixes aggregates and bare columns without GROUP BY, etc.
    Semantic(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            SqlError::Semantic(m) => write!(f, "semantic error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// One SELECT projection.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// All columns.
    Star,
    /// A bare column.
    Column(String),
    /// `agg(column)`; `None` column means `COUNT(*)`.
    Aggregate(AggFn, Option<String>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// WHERE expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Cmp {
        column: String,
        op: CmpOp,
        literal: Value,
    },
    IsNull {
        column: String,
        negated: bool,
    },
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
}

/// An inner equi-join clause: `JOIN <table> ON left.<left_col> = <table>.<right_col>`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Right-side (build) table name.
    pub table: String,
    /// Join key column on the FROM (probe) table.
    pub left_col: String,
    /// Join key column on the joined (build) table.
    pub right_col: String,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub projections: Vec<Projection>,
    pub table: String,
    pub join: Option<JoinClause>,
    pub filter: Option<Expr>,
    pub group_by: Vec<String>,
    pub order_by: Option<(String, bool)>, // (column, descending)
    pub limit: Option<usize>,
}

// ---------------------------------------------------------------- tokenizer

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str),
}

fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | ',' | '*' | '.' => {
                out.push(Token::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    _ => "*",
                }));
                i += 1;
            }
            '=' => {
                out.push(Token::Sym("="));
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Sym("!="));
                i += 2;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Sym("<="));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(Token::Sym("!="));
                    i += 2;
                } else {
                    out.push(Token::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Sym(">="));
                    i += 2;
                } else {
                    out.push(Token::Sym(">"));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(SqlError::Parse("unterminated string".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                let mut is_float = false;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    if chars[i] == '.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        SqlError::Parse(format!("bad float literal '{text}'"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        SqlError::Parse(format!("bad int literal '{text}'"))
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(SqlError::Parse(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

// ------------------------------------------------------------------- parser

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(SqlError::Parse(format!("expected {kw}, got {other:?}"))),
        }
    }

    fn keyword_is(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, got {other:?}"
            ))),
        }
    }
}

fn agg_of(name: &str) -> Option<AggFn> {
    match name.to_ascii_uppercase().as_str() {
        "COUNT" => Some(AggFn::Count),
        "SUM" => Some(AggFn::Sum),
        "AVG" => Some(AggFn::Avg),
        "MIN" => Some(AggFn::Min),
        "MAX" => Some(AggFn::Max),
        _ => None,
    }
}

/// Parse a SELECT statement.
pub fn parse(input: &str) -> Result<Query, SqlError> {
    let mut p = Parser {
        tokens: tokenize(input)?,
        pos: 0,
    };
    p.expect_keyword("SELECT")?;
    let mut projections = Vec::new();
    loop {
        if matches!(p.peek(), Some(Token::Sym("*"))) {
            p.next();
            projections.push(Projection::Star);
        } else {
            let name = p.ident()?;
            if let (Some(agg), Some(Token::Sym("("))) = (agg_of(&name), p.peek()) {
                p.next(); // (
                let col = if matches!(p.peek(), Some(Token::Sym("*"))) {
                    p.next();
                    None
                } else {
                    Some(p.ident()?)
                };
                match p.next() {
                    Some(Token::Sym(")")) => {}
                    other => return Err(SqlError::Parse(format!("expected ), got {other:?}"))),
                }
                projections.push(Projection::Aggregate(agg, col));
            } else {
                projections.push(Projection::Column(name));
            }
        }
        if matches!(p.peek(), Some(Token::Sym(","))) {
            p.next();
        } else {
            break;
        }
    }
    p.expect_keyword("FROM")?;
    let table = p.ident()?;

    let mut join = None;
    if p.keyword_is("JOIN") {
        p.next();
        let right_table = p.ident()?;
        p.expect_keyword("ON")?;
        let (qa, ca) = qualified_column(&mut p)?;
        match p.next() {
            Some(Token::Sym("=")) => {}
            other => return Err(SqlError::Parse(format!("expected = in ON, got {other:?}"))),
        }
        let (qb, cb) = qualified_column(&mut p)?;
        if right_table == table {
            return Err(SqlError::Parse(format!(
                "self-join of {table} is not supported"
            )));
        }
        // Either qualification order is accepted; both sides must be named.
        let (left_col, right_col) = if qa == table && qb == right_table {
            (ca, cb)
        } else if qa == right_table && qb == table {
            (cb, ca)
        } else {
            return Err(SqlError::Parse(format!(
                "ON must equate a {table} column with a {right_table} column, got {qa}.{ca} = {qb}.{cb}"
            )));
        };
        join = Some(JoinClause {
            table: right_table,
            left_col,
            right_col,
        });
    }

    let mut filter = None;
    if p.keyword_is("WHERE") {
        p.next();
        filter = Some(parse_or(&mut p)?);
    }

    let mut group_by = Vec::new();
    if p.keyword_is("GROUP") {
        p.next();
        p.expect_keyword("BY")?;
        loop {
            group_by.push(p.ident()?);
            if matches!(p.peek(), Some(Token::Sym(","))) {
                p.next();
            } else {
                break;
            }
        }
    }

    let mut order_by = None;
    if p.keyword_is("ORDER") {
        p.next();
        p.expect_keyword("BY")?;
        let col = p.ident()?;
        let mut desc = false;
        if p.keyword_is("DESC") {
            p.next();
            desc = true;
        } else if p.keyword_is("ASC") {
            p.next();
        }
        order_by = Some((col, desc));
    }

    let mut limit = None;
    if p.keyword_is("LIMIT") {
        p.next();
        match p.next() {
            Some(Token::Int(n)) if n >= 0 => limit = Some(n as usize),
            Some(Token::Int(n)) => {
                return Err(SqlError::Parse(format!(
                    "LIMIT must be a non-negative integer, got {n}"
                )))
            }
            other => return Err(SqlError::Parse(format!("bad LIMIT, got {other:?}"))),
        }
    }

    if p.peek().is_some() {
        return Err(SqlError::Parse(format!(
            "trailing tokens starting at {:?}",
            p.peek()
        )));
    }
    Ok(Query {
        projections,
        table,
        join,
        filter,
        group_by,
        order_by,
        limit,
    })
}

/// `ident '.' ident` — a table-qualified column in an ON clause.
fn qualified_column(p: &mut Parser) -> Result<(String, String), SqlError> {
    let t = p.ident()?;
    match p.next() {
        Some(Token::Sym(".")) => {}
        other => {
            return Err(SqlError::Parse(format!(
                "expected qualified table.column, got {other:?}"
            )))
        }
    }
    let c = p.ident()?;
    Ok((t, c))
}

fn parse_or(p: &mut Parser) -> Result<Expr, SqlError> {
    let mut left = parse_and(p)?;
    while p.keyword_is("OR") {
        p.next();
        let right = parse_and(p)?;
        left = Expr::Or(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_and(p: &mut Parser) -> Result<Expr, SqlError> {
    let mut left = parse_cmp(p)?;
    while p.keyword_is("AND") {
        p.next();
        let right = parse_cmp(p)?;
        left = Expr::And(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_cmp(p: &mut Parser) -> Result<Expr, SqlError> {
    let column = p.ident()?;
    if p.keyword_is("IS") {
        p.next();
        let negated = if p.keyword_is("NOT") {
            p.next();
            true
        } else {
            false
        };
        p.expect_keyword("NULL")?;
        return Ok(Expr::IsNull { column, negated });
    }
    let op = match p.next() {
        Some(Token::Sym("=")) => CmpOp::Eq,
        Some(Token::Sym("!=")) => CmpOp::Ne,
        Some(Token::Sym("<")) => CmpOp::Lt,
        Some(Token::Sym("<=")) => CmpOp::Le,
        Some(Token::Sym(">")) => CmpOp::Gt,
        Some(Token::Sym(">=")) => CmpOp::Ge,
        other => return Err(SqlError::Parse(format!("expected operator, got {other:?}"))),
    };
    let literal = match p.next() {
        Some(Token::Int(v)) => Value::Int(v),
        Some(Token::Float(v)) => Value::Float(v),
        Some(Token::Str(s)) => Value::Text(s),
        Some(Token::Ident(s)) if s.eq_ignore_ascii_case("true") => Value::Bool(true),
        Some(Token::Ident(s)) if s.eq_ignore_ascii_case("false") => Value::Bool(false),
        other => return Err(SqlError::Parse(format!("expected literal, got {other:?}"))),
    };
    Ok(Expr::Cmp {
        column,
        op,
        literal,
    })
}

// ----------------------------------------------------------------- executor

/// Wrapper giving `Value` a total order for grouping keys.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct OrdValue(pub(crate) Value);
impl Eq for OrdValue {}
impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.sql_cmp(&other.0)
    }
}

/// A WHERE tree with column names resolved to indices once at plan time,
/// so per-row evaluation is infallible (workers cannot hit name errors).
#[derive(Debug, Clone)]
pub(crate) enum CompiledExpr {
    Cmp {
        col: usize,
        op: CmpOp,
        literal: Value,
    },
    IsNull {
        col: usize,
        negated: bool,
    },
    And(Box<CompiledExpr>, Box<CompiledExpr>),
    Or(Box<CompiledExpr>, Box<CompiledExpr>),
}

pub(crate) fn compile_filter(expr: &Expr, schema: &Schema) -> Result<CompiledExpr, SqlError> {
    let resolve = |column: &String| {
        schema
            .index_of(column)
            .ok_or_else(|| SqlError::UnknownColumn(column.clone()))
    };
    Ok(match expr {
        Expr::And(a, b) => CompiledExpr::And(
            Box::new(compile_filter(a, schema)?),
            Box::new(compile_filter(b, schema)?),
        ),
        Expr::Or(a, b) => CompiledExpr::Or(
            Box::new(compile_filter(a, schema)?),
            Box::new(compile_filter(b, schema)?),
        ),
        Expr::IsNull { column, negated } => CompiledExpr::IsNull {
            col: resolve(column)?,
            negated: *negated,
        },
        Expr::Cmp {
            column,
            op,
            literal,
        } => CompiledExpr::Cmp {
            col: resolve(column)?,
            op: *op,
            literal: literal.clone(),
        },
    })
}

impl CompiledExpr {
    pub(crate) fn eval(&self, table: &Table, row: usize) -> bool {
        match self {
            CompiledExpr::And(a, b) => a.eval(table, row) && b.eval(table, row),
            CompiledExpr::Or(a, b) => a.eval(table, row) || b.eval(table, row),
            CompiledExpr::IsNull { col, negated } => {
                (table.cell(row, *col) == &Value::Null) != *negated
            }
            CompiledExpr::Cmp { col, op, literal } => {
                let v = table.cell(row, *col);
                if v == &Value::Null {
                    return false; // SQL: NULL compares unknown -> filtered
                }
                let ord = v.sql_cmp(literal);
                use std::cmp::Ordering::*;
                match op {
                    CmpOp::Eq => ord == Equal,
                    CmpOp::Ne => ord != Equal,
                    CmpOp::Lt => ord == Less,
                    CmpOp::Le => ord != Greater,
                    CmpOp::Gt => ord == Greater,
                    CmpOp::Ge => ord != Less,
                }
            }
        }
    }
}

/// Execute a parsed query against a table. Queries with a JOIN clause need
/// [`execute_with`] so the right-side table can be supplied.
pub fn execute(query: &Query, table: &Table) -> Result<Table, SqlError> {
    execute_with(query, table, None)
}

/// Execute a parsed query, supplying the JOIN right-side table if the query
/// has one. This is the single-process reference engine: it runs the exact
/// same plan → partial → merge pipeline the distributed engine fans out,
/// with one segment — so distributed results are byte-identical to it by
/// construction.
pub fn execute_with(
    query: &Query,
    table: &Table,
    right: Option<&Table>,
) -> Result<Table, SqlError> {
    let joined;
    let input: &Table = match (&query.join, right) {
        (Some(j), Some(r)) => {
            joined = join_tables(j, table, r)?;
            &joined
        }
        (Some(j), None) => {
            return Err(SqlError::Semantic(format!(
                "query joins table {} but no right-side table was provided",
                j.table
            )))
        }
        (None, _) => table,
    };
    let plan = plan(query, input.schema())?;
    let partial = execute_partial(&plan, input, 0..input.n_rows());
    Ok(finish(&plan, vec![partial]).0)
}

// ------------------------------------------------------------------ planning

/// Output of a projection position: a group key or an aggregate.
#[derive(Debug, Clone)]
pub(crate) enum OutputExpr {
    /// Index into the group key vector.
    Key(usize),
    /// Aggregate over an input column (`None` = `COUNT(*)`).
    Agg(AggFn, Option<usize>),
}

/// Query shape after validation: plain projection or grouped aggregation.
#[derive(Debug, Clone)]
pub(crate) enum Shape {
    Plain {
        cols: Vec<usize>,
    },
    Grouped {
        group_cols: Vec<usize>,
        outputs: Vec<OutputExpr>,
    },
}

/// A validated query with every name resolved against the input schema.
/// Planning happens once at the coordinator; workers execute infallibly.
#[derive(Debug, Clone)]
pub(crate) struct ExecPlan {
    pub(crate) filter: Option<CompiledExpr>,
    pub(crate) shape: Shape,
    /// Output schema (what [`finish`] builds).
    pub(crate) schema: Schema,
    /// ORDER BY resolved against the *output* schema: (column index, desc).
    pub(crate) order: Option<(usize, bool)>,
    pub(crate) limit: Option<usize>,
}

/// Validate `query` against `schema` and resolve all names to indices.
pub(crate) fn plan(query: &Query, schema: &Schema) -> Result<ExecPlan, SqlError> {
    let filter = query
        .filter
        .as_ref()
        .map(|e| compile_filter(e, schema))
        .transpose()?;

    let has_agg = query
        .projections
        .iter()
        .any(|p| matches!(p, Projection::Aggregate(..)));

    let (shape, out_schema) = if has_agg || !query.group_by.is_empty() {
        plan_grouped(query, schema)?
    } else {
        plan_plain(query, schema)?
    };

    let order = match &query.order_by {
        Some((col, desc)) => {
            let idx = out_schema
                .index_of(col)
                .ok_or_else(|| SqlError::UnknownColumn(col.clone()))?;
            Some((idx, *desc))
        }
        None => None,
    };

    Ok(ExecPlan {
        filter,
        shape,
        schema: out_schema,
        order,
        limit: query.limit,
    })
}

fn plan_plain(query: &Query, schema: &Schema) -> Result<(Shape, Schema), SqlError> {
    let mut cols: Vec<usize> = Vec::new();
    for p in &query.projections {
        match p {
            Projection::Star => cols.extend(0..schema.len()),
            Projection::Column(name) => cols.push(
                schema
                    .index_of(name)
                    .ok_or_else(|| SqlError::UnknownColumn(name.clone()))?,
            ),
            Projection::Aggregate(..) => unreachable!("handled by grouped path"),
        }
    }
    let out = Schema::new(
        cols.iter()
            .map(|&c| (schema.name(c), schema.column_type(c)))
            .collect(),
    );
    Ok((Shape::Plain { cols }, out))
}

fn plan_grouped(query: &Query, schema: &Schema) -> Result<(Shape, Schema), SqlError> {
    // Validate: bare columns must appear in GROUP BY; * cannot be aggregated.
    for p in &query.projections {
        if let Projection::Column(name) = p {
            if !query.group_by.contains(name) {
                return Err(SqlError::Semantic(format!(
                    "column {name} must appear in GROUP BY"
                )));
            }
        }
        if matches!(p, Projection::Star) {
            return Err(SqlError::Semantic("SELECT * cannot be aggregated".into()));
        }
    }
    let group_cols: Vec<usize> = query
        .group_by
        .iter()
        .map(|name| {
            schema
                .index_of(name)
                .ok_or_else(|| SqlError::UnknownColumn(name.clone()))
        })
        .collect::<Result<_, _>>()?;

    let mut outputs: Vec<OutputExpr> = Vec::new();
    let mut schema_cols: Vec<(String, ColumnType)> = Vec::new();
    for p in &query.projections {
        match p {
            Projection::Column(name) => {
                let gi = query.group_by.iter().position(|g| g == name).unwrap();
                outputs.push(OutputExpr::Key(gi));
                let c = group_cols[gi];
                schema_cols.push((name.clone(), schema.column_type(c)));
            }
            Projection::Aggregate(agg, col) => {
                let col_idx = match col {
                    Some(c) => Some(
                        schema
                            .index_of(c)
                            .ok_or_else(|| SqlError::UnknownColumn(c.clone()))?,
                    ),
                    None => None,
                };
                let name = match col {
                    Some(c) => format!("{}_{}", agg_name(*agg), c),
                    None => "count".to_string(),
                };
                let ty = match agg {
                    AggFn::Count => ColumnType::Int,
                    AggFn::Sum | AggFn::Avg => ColumnType::Float,
                    AggFn::Min | AggFn::Max => match col_idx {
                        Some(c) => schema.column_type(c),
                        None => return Err(SqlError::Semantic("MIN/MAX need a column".into())),
                    },
                };
                outputs.push(OutputExpr::Agg(*agg, col_idx));
                schema_cols.push((name, ty));
            }
            Projection::Star => unreachable!(),
        }
    }
    let out = Schema::new(schema_cols.iter().map(|(n, t)| (n.as_str(), *t)).collect());
    Ok((
        Shape::Grouped {
            group_cols,
            outputs,
        },
        out,
    ))
}

// --------------------------------------------------- decomposable aggregates

/// Partial state of one aggregate — the worker-side half of a decomposed
/// aggregation. `update` folds in one input row, `merge` folds in another
/// partial (in segment order), `finalize` produces the output cell.
///
/// Every state is order-independent or first-wins, so merging S segment
/// partials in segment order is byte-identical to one full scan:
/// * `Count` adds `i64`s (associative);
/// * `Sum`/`Avg` accumulate into [`ExactSum`], which is exact — float
///   addition order cannot change the rounded result;
/// * `Min`/`Max` keep the **first** value of a `sql_cmp`-equal tie (e.g.
///   `Int(2)` vs `Float(2.0)`), in input row order.
#[derive(Debug, Clone)]
pub(crate) enum AggState {
    Count(i64),
    Sum(ExactSum),
    Avg { sum: ExactSum, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    pub(crate) fn new(agg: AggFn) -> Self {
        match agg {
            AggFn::Count => AggState::Count(0),
            AggFn::Sum => AggState::Sum(ExactSum::new()),
            AggFn::Avg => AggState::Avg {
                sum: ExactSum::new(),
                n: 0,
            },
            AggFn::Min => AggState::Min(None),
            AggFn::Max => AggState::Max(None),
        }
    }

    /// Fold in one row's value; `None` means `COUNT(*)` (no column).
    pub(crate) fn update(&mut self, v: Option<&Value>) {
        match self {
            AggState::Count(n) => match v {
                None => *n += 1,        // COUNT(*): every row
                Some(Value::Null) => {} // COUNT(col): non-null only
                Some(_) => *n += 1,
            },
            AggState::Sum(sum) => {
                if let Some(x) = v.and_then(|v| v.as_f64()) {
                    sum.add(x);
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(x) = v.and_then(|v| v.as_f64()) {
                    sum.add(x);
                    *n += 1;
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = v.filter(|v| **v != Value::Null) {
                    match cur {
                        None => *cur = Some(v.clone()),
                        Some(c) => {
                            if v.sql_cmp(c) == std::cmp::Ordering::Less {
                                *cur = Some(v.clone()); // strict: first tie wins
                            }
                        }
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = v.filter(|v| **v != Value::Null) {
                    match cur {
                        None => *cur = Some(v.clone()),
                        Some(c) => {
                            if v.sql_cmp(c) == std::cmp::Ordering::Greater {
                                *cur = Some(v.clone());
                            }
                        }
                    }
                }
            }
        }
    }

    /// Fold in a later segment's partial. Must be called in segment order
    /// so the MIN/MAX first-wins tie rule matches a sequential scan.
    pub(crate) fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => a.merge(&b),
            (AggState::Avg { sum: a, n: an }, AggState::Avg { sum: b, n: bn }) => {
                a.merge(&b);
                *an += bn;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    match a {
                        None => *a = Some(bv),
                        Some(av) => {
                            if bv.sql_cmp(av) == std::cmp::Ordering::Less {
                                *a = Some(bv); // strict: earlier segment wins ties
                            }
                        }
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    match a {
                        None => *a = Some(bv),
                        Some(av) => {
                            if bv.sql_cmp(av) == std::cmp::Ordering::Greater {
                                *a = Some(bv);
                            }
                        }
                    }
                }
            }
            _ => unreachable!("merging mismatched aggregate states"),
        }
    }

    pub(crate) fn finalize(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum(sum) => Value::Float(sum.value()),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum.value() / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

// ----------------------------------------------------- partials and merging

/// Per-group aggregate states keyed by the group key (BTreeMap = the
/// engine's canonical group output order).
pub(crate) type Groups = BTreeMap<Vec<OrdValue>, Vec<AggState>>;

/// What one worker ships back from its row-range segment.
#[derive(Debug)]
pub(crate) struct Partial {
    /// Rows examined (the whole segment; filters don't shrink this).
    pub(crate) scanned: u64,
    pub(crate) data: PartialData,
}

#[derive(Debug)]
pub(crate) enum PartialData {
    /// Projected rows tagged with their global input row index (the
    /// deterministic tie-break). With ORDER BY the list is sorted by
    /// (key, index) — bounded to LIMIT entries when a LIMIT is set.
    Rows(Vec<(usize, Vec<Value>)>),
    /// Grouped aggregate partials.
    Groups(Groups),
}

/// Run the planned scan over `range` (a contiguous row segment) and emit a
/// mergeable partial. Infallible: `plan` resolved every name already.
pub(crate) fn execute_partial(plan: &ExecPlan, table: &Table, range: Range<usize>) -> Partial {
    let scanned = range.len() as u64;
    let pass = |r: usize| plan.filter.as_ref().is_none_or(|f| f.eval(table, r));
    let data = match &plan.shape {
        Shape::Plain { cols } => {
            let project = |r: usize| -> Vec<Value> {
                cols.iter().map(|&c| table.cell(r, c).clone()).collect()
            };
            let rows = match (plan.order, plan.limit) {
                // ORDER BY + LIMIT: bounded top-K, never materializes more
                // than K rows per segment.
                (Some((key, desc)), Some(k)) => bounded_top_k(
                    range.filter(|&r| pass(r)).map(|r| (r, project(r))),
                    key,
                    desc,
                    k,
                ),
                // ORDER BY only: sort the segment so the coordinator can
                // k-way merge.
                (Some((key, desc)), None) => {
                    let mut rows: Vec<(usize, Vec<Value>)> = range
                        .filter(|&r| pass(r))
                        .map(|r| (r, project(r)))
                        .collect();
                    sort_rows(&mut rows, key, desc);
                    rows
                }
                // No ORDER BY: input order; a LIMIT caps what we keep (the
                // coordinator truncates the segment-order concatenation).
                (None, limit) => {
                    let cap = limit.unwrap_or(usize::MAX);
                    let mut rows = Vec::new();
                    for r in range {
                        if rows.len() >= cap {
                            break;
                        }
                        if pass(r) {
                            rows.push((r, project(r)));
                        }
                    }
                    rows
                }
            };
            PartialData::Rows(rows)
        }
        Shape::Grouped {
            group_cols,
            outputs,
        } => {
            let new_states = || -> Vec<AggState> {
                outputs
                    .iter()
                    .filter_map(|o| match o {
                        OutputExpr::Agg(agg, _) => Some(AggState::new(*agg)),
                        OutputExpr::Key(_) => None,
                    })
                    .collect()
            };
            let mut groups: Groups = BTreeMap::new();
            // Global aggregate: a single (possibly empty) group per segment;
            // empty-segment states are neutral under merge.
            if group_cols.is_empty() {
                groups.insert(Vec::new(), new_states());
            }
            for r in range {
                if !pass(r) {
                    continue;
                }
                let key: Vec<OrdValue> = group_cols
                    .iter()
                    .map(|&c| OrdValue(table.cell(r, c).clone()))
                    .collect();
                let states = groups.entry(key).or_insert_with(new_states);
                let mut si = 0;
                for o in outputs {
                    if let OutputExpr::Agg(_, col) = o {
                        states[si].update(col.map(|c| table.cell(r, c)));
                        si += 1;
                    }
                }
            }
            PartialData::Groups(groups)
        }
    };
    Partial { scanned, data }
}

/// Coordinator-side merge counters (the bench's counted-work gates).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FinishStats {
    /// Partials folded into the merge.
    pub(crate) partials: u64,
    /// Group keys that existed in more than one partial (per extra partial).
    pub(crate) group_keys_merged: u64,
    /// Rows shipped by workers into the final merge (for top-K queries this
    /// is ≤ LIMIT · segments, where a full sort would ship every row).
    pub(crate) rows_materialized: u64,
}

/// Merge worker partials **in segment order** and apply ORDER BY/LIMIT.
/// One segment ⇒ plain single-process execution; the result is identical
/// for any segmentation of the same input.
pub(crate) fn finish(plan: &ExecPlan, partials: Vec<Partial>) -> (Table, FinishStats) {
    let mut stats = FinishStats {
        partials: partials.len() as u64,
        ..FinishStats::default()
    };
    let rows: Vec<(usize, Vec<Value>)> = match &plan.shape {
        Shape::Grouped { outputs, .. } => {
            let mut merged: Groups = BTreeMap::new();
            for partial in partials {
                let PartialData::Groups(part) = partial.data else {
                    unreachable!("plain partial in grouped plan")
                };
                stats.rows_materialized += part.len() as u64;
                for (key, states) in part {
                    match merged.entry(key) {
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert(states);
                        }
                        std::collections::btree_map::Entry::Occupied(mut e) => {
                            stats.group_keys_merged += 1;
                            for (a, b) in e.get_mut().iter_mut().zip(states) {
                                a.merge(b);
                            }
                        }
                    }
                }
            }
            // Finalize groups in key order; the ordinal doubles as the
            // ORDER BY tie-break (group order is already deterministic).
            let mut rows: Vec<(usize, Vec<Value>)> = Vec::with_capacity(merged.len());
            for (ordinal, (key, states)) in merged.into_iter().enumerate() {
                let mut states = states.into_iter();
                let row: Vec<Value> = outputs
                    .iter()
                    .map(|o| match o {
                        OutputExpr::Key(gi) => key[*gi].0.clone(),
                        OutputExpr::Agg(..) => {
                            states.next().expect("state per aggregate").finalize()
                        }
                    })
                    .collect();
                rows.push((ordinal, row));
            }
            match (plan.order, plan.limit) {
                (Some((key, desc)), Some(k)) => bounded_top_k(rows.into_iter(), key, desc, k),
                (Some((key, desc)), None) => {
                    let mut rows = rows;
                    sort_rows(&mut rows, key, desc);
                    rows
                }
                (None, Some(k)) => {
                    let mut rows = rows;
                    rows.truncate(k);
                    rows
                }
                (None, None) => rows,
            }
        }
        Shape::Plain { .. } => {
            let lists: Vec<Vec<(usize, Vec<Value>)>> = partials
                .into_iter()
                .map(|p| {
                    let PartialData::Rows(rows) = p.data else {
                        unreachable!("grouped partial in plain plan")
                    };
                    stats.rows_materialized += rows.len() as u64;
                    rows
                })
                .collect();
            match plan.order {
                Some((key, desc)) => merge_sorted(lists, key, desc, plan.limit),
                None => {
                    let cap = plan.limit.unwrap_or(usize::MAX);
                    let mut out = Vec::new();
                    for list in lists {
                        for row in list {
                            if out.len() >= cap {
                                break;
                            }
                            out.push(row);
                        }
                    }
                    out
                }
            }
        }
    };
    let table = Table::from_rows(plan.schema.clone(), rows.into_iter().map(|(_, r)| r));
    (table, stats)
}

// -------------------------------------------------- ORDER BY / LIMIT: top-K

/// A row ranked for ORDER BY. The total order is (sort key under `sql_cmp`,
/// reversed when descending) then **global input row index ascending** —
/// the documented deterministic tie-break: rows with equal keys keep their
/// input order, so per-segment top-K selections merge to exactly what a
/// stable full sort would produce.
struct Ranked {
    key: Value,
    idx: usize,
    desc: bool,
    row: Vec<Value>,
}

impl Ranked {
    fn output_order(&self, other: &Self) -> std::cmp::Ordering {
        let k = self.key.sql_cmp(&other.key);
        let k = if self.desc { k.reverse() } else { k };
        k.then(self.idx.cmp(&other.idx))
    }
}

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.output_order(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Ranked {}
impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.output_order(other)
    }
}

/// Keep the first `k` rows in output order without materializing more than
/// `k + 1` entries: a max-heap of the current worst keeps eviction O(log k).
fn bounded_top_k(
    rows: impl Iterator<Item = (usize, Vec<Value>)>,
    key_col: usize,
    desc: bool,
    k: usize,
) -> Vec<(usize, Vec<Value>)> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Ranked> = BinaryHeap::with_capacity(k + 1);
    for (idx, row) in rows {
        heap.push(Ranked {
            key: row[key_col].clone(),
            idx,
            desc,
            row,
        });
        if heap.len() > k {
            heap.pop(); // evict the worst of the k+1
        }
    }
    heap.into_sorted_vec()
        .into_iter()
        .map(|r| (r.idx, r.row))
        .collect()
}

/// Full sort in output order (same key + input-index tie-break as
/// [`bounded_top_k`], so the two paths agree wherever both apply).
fn sort_rows(rows: &mut [(usize, Vec<Value>)], key_col: usize, desc: bool) {
    rows.sort_by(|a, b| {
        let k = a.1[key_col].sql_cmp(&b.1[key_col]);
        let k = if desc { k.reverse() } else { k };
        k.then(a.0.cmp(&b.0))
    });
}

/// K-way merge of per-segment lists already sorted in output order,
/// truncated to `limit`. Ties across segments resolve by global row index,
/// matching the single-segment sort exactly.
fn merge_sorted(
    lists: Vec<Vec<(usize, Vec<Value>)>>,
    key_col: usize,
    desc: bool,
    limit: Option<usize>,
) -> Vec<(usize, Vec<Value>)> {
    let cap = limit.unwrap_or(usize::MAX);
    let mut heads = vec![0usize; lists.len()];
    let mut out = Vec::new();
    while out.len() < cap {
        let mut best: Option<usize> = None;
        for (p, list) in lists.iter().enumerate() {
            if heads[p] >= list.len() {
                continue;
            }
            best = match best {
                None => Some(p),
                Some(b) => {
                    let (bi, brow) = &lists[b][heads[b]];
                    let (pi, prow) = &list[heads[p]];
                    let k = prow[key_col].sql_cmp(&brow[key_col]);
                    let k = if desc { k.reverse() } else { k };
                    if k.then(pi.cmp(bi)) == std::cmp::Ordering::Less {
                        Some(p)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let Some(b) = best else { break };
        out.push(lists[b][heads[b]].clone());
        heads[b] += 1;
    }
    out
}

fn agg_name(agg: AggFn) -> &'static str {
    match agg {
        AggFn::Count => "count",
        AggFn::Sum => "sum",
        AggFn::Avg => "avg",
        AggFn::Min => "min",
        AggFn::Max => "max",
    }
}

// ------------------------------------------------------- inner equi-join

/// A join with key columns resolved and the output schema computed.
#[derive(Debug, Clone)]
pub(crate) struct JoinPlan {
    pub(crate) left_col: usize,
    pub(crate) right_col: usize,
    /// Left columns as-is, then right columns; a right column whose name
    /// collides with a left one is prefixed `<right_table>_`.
    pub(crate) schema: Schema,
}

/// Resolve join key columns and build the joined output schema.
pub(crate) fn plan_join(
    join: &JoinClause,
    left: &Schema,
    right: &Schema,
) -> Result<JoinPlan, SqlError> {
    let left_col = left
        .index_of(&join.left_col)
        .ok_or_else(|| SqlError::UnknownColumn(join.left_col.clone()))?;
    let right_col = right
        .index_of(&join.right_col)
        .ok_or_else(|| SqlError::UnknownColumn(join.right_col.clone()))?;
    let mut cols: Vec<(String, ColumnType)> = (0..left.len())
        .map(|c| (left.name(c).to_string(), left.column_type(c)))
        .collect();
    for c in 0..right.len() {
        let base = right.name(c);
        let name = if cols.iter().any(|(n, _)| n == base) {
            format!("{}_{}", join.table, base)
        } else {
            base.to_string()
        };
        if cols.iter().any(|(n, _)| *n == name) {
            return Err(SqlError::Semantic(format!(
                "join output column name collision: {name}"
            )));
        }
        cols.push((name, right.column_type(c)));
    }
    let schema = Schema::new(cols.iter().map(|(n, t)| (n.as_str(), *t)).collect());
    Ok(JoinPlan {
        left_col,
        right_col,
        schema,
    })
}

fn splitmix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Partition hash for join keys, consistent with `sql_cmp` equality:
/// numerically equal `Int`/`Float` keys (which `sql_cmp` treats as equal,
/// e.g. `Int(2)` and `Float(2.0)`) hash identically, so hash-partitioned
/// workers see every row of an equality class. NULL never reaches this
/// (inner-join semantics drop NULL keys first).
pub(crate) fn join_hash(v: &Value) -> u64 {
    let (tag, payload): (u64, u64) = match v {
        Value::Null => (0, 0),
        Value::Bool(b) => (1, *b as u64),
        Value::Int(i) => (2, (*i as f64).to_bits()),
        Value::Float(f) => (2, f.to_bits()),
        Value::Text(s) => {
            // FNV-1a over the bytes.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in s.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            (3, h)
        }
    };
    splitmix64(tag.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ splitmix64(payload))
}

/// Hash-join one partition: build a key → row-index map from `right_rows`
/// (in index order), probe `left_rows` in index order. Output pairs are
/// `(left row index, combined row)`, sorted by left index by construction,
/// with matches for one left row in right index order — exactly the order
/// a full nested probe of the whole tables produces, which is why
/// per-partition outputs k-way-merge back to the single-process result.
/// NULL join keys on either side are dropped (SQL inner-join semantics).
pub(crate) fn join_probe(
    jp: &JoinPlan,
    left: &Table,
    right: &Table,
    left_rows: &[usize],
    right_rows: &[usize],
) -> Vec<(usize, Vec<Value>)> {
    let mut built: BTreeMap<OrdValue, Vec<usize>> = BTreeMap::new();
    for &r in right_rows {
        let k = right.cell(r, jp.right_col);
        if k == &Value::Null {
            continue;
        }
        built.entry(OrdValue(k.clone())).or_default().push(r);
    }
    let mut out = Vec::new();
    for &l in left_rows {
        let k = left.cell(l, jp.left_col);
        if k == &Value::Null {
            continue;
        }
        if let Some(matches) = built.get(&OrdValue(k.clone())) {
            for &r in matches {
                let mut row: Vec<Value> = (0..left.schema().len())
                    .map(|c| left.cell(l, c).clone())
                    .collect();
                row.extend((0..right.schema().len()).map(|c| right.cell(r, c).clone()));
                out.push((l, row));
            }
        }
    }
    out
}

/// Single-process inner equi-join: one partition covering both tables.
pub(crate) fn join_tables(
    join: &JoinClause,
    left: &Table,
    right: &Table,
) -> Result<Table, SqlError> {
    let jp = plan_join(join, left.schema(), right.schema())?;
    let left_rows: Vec<usize> = (0..left.n_rows()).collect();
    let right_rows: Vec<usize> = (0..right.n_rows()).collect();
    let rows = join_probe(&jp, left, right, &left_rows, &right_rows);
    Ok(Table::from_rows(
        jp.schema,
        rows.into_iter().map(|(_, r)| r),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx_table() -> Table {
        let mut t = Table::new(Schema::new(vec![
            ("user", ColumnType::Text),
            ("day", ColumnType::Int),
            ("amount", ColumnType::Float),
            ("fraud", ColumnType::Bool),
        ]));
        for (u, d, a, f) in [
            ("zoe", 1, 10.0, false),
            ("zoe", 2, 20.0, true),
            ("sam", 1, 5.0, false),
            ("sam", 2, 15.0, false),
            ("liam", 3, 100.0, true),
        ] {
            t.push_row(vec![u.into(), (d as i64).into(), a.into(), f.into()]);
        }
        t
    }

    fn run(sql: &str) -> Table {
        execute(&parse(sql).unwrap(), &tx_table()).unwrap()
    }

    #[test]
    fn select_star_with_where() {
        let r = run("SELECT * FROM tx WHERE day = 2");
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.schema().len(), 4);
    }

    #[test]
    fn projection_selects_columns() {
        let r = run("SELECT user, amount FROM tx WHERE amount > 10");
        assert_eq!(r.schema().names(), vec!["user", "amount"]);
        assert_eq!(r.n_rows(), 3);
    }

    #[test]
    fn group_by_with_aggregates() {
        let r = run("SELECT user, COUNT(*), SUM(amount) FROM tx GROUP BY user");
        assert_eq!(r.n_rows(), 3);
        // BTreeMap ordering: liam, sam, zoe.
        assert_eq!(r.cell(0, 0).as_str(), Some("liam"));
        assert_eq!(r.cell(1, 0).as_str(), Some("sam"));
        assert_eq!(r.cell(1, 1).as_i64(), Some(2));
        assert_eq!(r.cell(1, 2).as_f64(), Some(20.0));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let r = run("SELECT COUNT(*), AVG(amount), MAX(amount) FROM tx WHERE fraud = true");
        assert_eq!(r.n_rows(), 1);
        assert_eq!(r.cell(0, 0).as_i64(), Some(2));
        assert_eq!(r.cell(0, 1).as_f64(), Some(60.0));
        assert_eq!(r.cell(0, 2).as_f64(), Some(100.0));
    }

    #[test]
    fn and_or_precedence() {
        // AND binds tighter: day = 1 OR (day = 2 AND fraud = true).
        let r = run("SELECT user FROM tx WHERE day = 1 OR day = 2 AND fraud = true");
        assert_eq!(r.n_rows(), 3); // zoe@1, sam@1, zoe@2
    }

    #[test]
    fn order_by_desc_and_limit() {
        let r = run("SELECT user, amount FROM tx ORDER BY amount DESC LIMIT 2");
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.cell(0, 0).as_str(), Some("liam"));
        assert_eq!(r.cell(1, 1).as_f64(), Some(20.0));
    }

    #[test]
    fn is_null_filters() {
        let mut t = tx_table();
        t.push_row(vec![Value::Null, 9.into(), 1.0.into(), false.into()]);
        let q = parse("SELECT day FROM tx WHERE user IS NULL").unwrap();
        let r = execute(&q, &t).unwrap();
        assert_eq!(r.n_rows(), 1);
        let q = parse("SELECT day FROM tx WHERE user IS NOT NULL").unwrap();
        let r = execute(&q, &t).unwrap();
        assert_eq!(r.n_rows(), 5);
    }

    #[test]
    fn unknown_column_is_an_error() {
        let q = parse("SELECT nope FROM tx").unwrap();
        assert!(matches!(
            execute(&q, &tx_table()),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn ungrouped_bare_column_with_aggregate_rejected() {
        let q = parse("SELECT user, COUNT(*) FROM tx").unwrap();
        assert!(matches!(
            execute(&q, &tx_table()),
            Err(SqlError::Semantic(_))
        ));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELEC user FROM tx").is_err());
        assert!(parse("SELECT user FROM tx WHERE").is_err());
        assert!(parse("SELECT user FROM tx LIMIT x").is_err());
        assert!(parse("SELECT user FROM tx WHERE user = 'unterminated").is_err());
        assert!(parse("SELECT user FROM tx extra tokens").is_err());
    }

    #[test]
    fn string_and_comparison_operators() {
        let r = run("SELECT user FROM tx WHERE user = 'zoe' AND amount >= 10");
        assert_eq!(r.n_rows(), 2);
        let r = run("SELECT user FROM tx WHERE user != 'zoe'");
        assert_eq!(r.n_rows(), 3);
        let r = run("SELECT user FROM tx WHERE day <> 1");
        assert_eq!(r.n_rows(), 3);
    }

    #[test]
    fn negative_limit_is_a_typed_parse_error() {
        match parse("SELECT user FROM tx LIMIT -1") {
            Err(SqlError::Parse(msg)) => {
                assert!(msg.contains("non-negative"), "got message: {msg}")
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
        // LIMIT 0 stays valid and yields an empty result.
        let r = run("SELECT user FROM tx LIMIT 0");
        assert_eq!(r.n_rows(), 0);
    }

    #[test]
    fn order_by_tie_break_is_input_row_order() {
        // Two rows share day=1 and two share day=2; stable tie-break means
        // equal keys keep their input order, both with and without LIMIT.
        let full = run("SELECT user, day FROM tx ORDER BY day ASC");
        assert_eq!(full.cell(0, 0).as_str(), Some("zoe")); // row 0, day 1
        assert_eq!(full.cell(1, 0).as_str(), Some("sam")); // row 2, day 1
        assert_eq!(full.cell(2, 0).as_str(), Some("zoe")); // row 1, day 2
        assert_eq!(full.cell(3, 0).as_str(), Some("sam")); // row 3, day 2
        let top = run("SELECT user, day FROM tx ORDER BY day ASC LIMIT 3");
        for i in 0..3 {
            assert_eq!(top.row(i), full.row(i), "top-K must agree with full sort");
        }
    }

    fn labels_table() -> Table {
        let mut t = Table::new(Schema::new(vec![
            ("user", ColumnType::Text),
            ("band", ColumnType::Int),
        ]));
        for (u, b) in [("zoe", 1), ("liam", 2), ("nobody", 9)] {
            t.push_row(vec![u.into(), (b as i64).into()]);
        }
        t.push_row(vec![Value::Null, 7.into()]); // NULL key: dropped by join
        t
    }

    fn run_join(sql_text: &str) -> Table {
        execute_with(
            &parse(sql_text).unwrap(),
            &tx_table(),
            Some(&labels_table()),
        )
        .unwrap()
    }

    #[test]
    fn join_parses_and_matches_rows() {
        let q = parse("SELECT user, band FROM tx JOIN labels ON tx.user = labels.user").unwrap();
        let j = q.join.as_ref().unwrap();
        assert_eq!(j.table, "labels");
        assert_eq!(j.left_col, "user");
        assert_eq!(j.right_col, "user");
        // zoe appears twice in tx, liam once; sam/nobody unmatched.
        let r = run_join("SELECT user, band FROM tx JOIN labels ON tx.user = labels.user");
        assert_eq!(r.n_rows(), 3);
        assert_eq!(r.cell(0, 0).as_str(), Some("zoe"));
        assert_eq!(r.cell(0, 1).as_i64(), Some(1));
        assert_eq!(r.cell(2, 0).as_str(), Some("liam"));
        assert_eq!(r.cell(2, 1).as_i64(), Some(2));
    }

    #[test]
    fn join_reversed_qualification_and_aggregation() {
        // ON sides may be written in either order.
        let r = run_join(
            "SELECT band, COUNT(*), SUM(amount) FROM tx \
             JOIN labels ON labels.user = tx.user GROUP BY band",
        );
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.cell(0, 0).as_i64(), Some(1)); // band 1 = zoe
        assert_eq!(r.cell(0, 1).as_i64(), Some(2));
        assert_eq!(r.cell(0, 2).as_f64(), Some(30.0));
        assert_eq!(r.cell(1, 2).as_f64(), Some(100.0)); // band 2 = liam
    }

    #[test]
    fn join_renames_colliding_right_columns() {
        let r = run_join("SELECT * FROM tx JOIN labels ON tx.user = labels.user");
        assert_eq!(
            r.schema().names(),
            vec!["user", "day", "amount", "fraud", "labels_user", "band"]
        );
    }

    #[test]
    fn join_null_keys_are_dropped() {
        let mut tx = tx_table();
        tx.push_row(vec![Value::Null, 5.into(), 1.0.into(), false.into()]);
        let q = parse("SELECT user, band FROM tx JOIN labels ON tx.user = labels.user").unwrap();
        let r = execute_with(&q, &tx, Some(&labels_table())).unwrap();
        assert_eq!(r.n_rows(), 3, "NULL keys must not match NULL keys");
    }

    #[test]
    fn join_errors_are_typed() {
        assert!(matches!(
            parse("SELECT a FROM tx JOIN tx ON tx.a = tx.a"),
            Err(SqlError::Parse(_))
        ));
        assert!(matches!(
            parse("SELECT a FROM tx JOIN lb ON other.a = lb.a"),
            Err(SqlError::Parse(_))
        ));
        assert!(matches!(
            parse("SELECT a FROM tx JOIN lb ON tx.a lb.a"),
            Err(SqlError::Parse(_))
        ));
        // Join query without a right-side table is a semantic error.
        let q = parse("SELECT user FROM tx JOIN labels ON tx.user = labels.user").unwrap();
        assert!(matches!(
            execute(&q, &tx_table()),
            Err(SqlError::Semantic(_))
        ));
        // Unknown join key column.
        let q = parse("SELECT user FROM tx JOIN labels ON tx.nope = labels.user").unwrap();
        assert!(matches!(
            execute_with(&q, &tx_table(), Some(&labels_table())),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn join_hash_consistent_with_sql_cmp_equality() {
        // Int and Float keys that sql_cmp treats as equal must hash alike,
        // or hash partitioning would split an equality class.
        assert_eq!(join_hash(&Value::Int(2)), join_hash(&Value::Float(2.0)));
        assert_ne!(join_hash(&Value::Int(2)), join_hash(&Value::Int(3)));
        assert_ne!(
            join_hash(&Value::Text("a".into())),
            join_hash(&Value::Text("b".into()))
        );
    }

    #[test]
    fn exact_sum_makes_aggregation_order_independent() {
        // 1e16 + 1 + (-1e16) in input order: a naive left-to-right f64 sum
        // gives 0.0 here. The exact accumulator returns 1.0.
        let mut t = Table::new(Schema::new(vec![
            ("g", ColumnType::Int),
            ("x", ColumnType::Float),
        ]));
        for x in [1e16, 1.0, -1e16] {
            t.push_row(vec![1i64.into(), x.into()]);
        }
        let q = parse("SELECT g, SUM(x), AVG(x) FROM t GROUP BY g").unwrap();
        let r = execute(&q, &t).unwrap();
        assert_eq!(r.cell(0, 1).as_f64(), Some(1.0));
        assert_eq!(r.cell(0, 2).as_f64(), Some(1.0 / 3.0));
    }
}
