//! A small SQL engine: `SELECT` with projections, aggregates, `WHERE`,
//! `GROUP BY`, `ORDER BY` and `LIMIT` over columnar tables.
//!
//! This is the "SQL command … submitted by web console" path of Figure 4.
//! The dialect is deliberately small but real — tokenizer, recursive-descent
//! parser, and a grouped-aggregate executor — covering what the TitAnt
//! offline stage needs: filtering transaction logs by day, counting fraud
//! reports per user, aggregating transfer pairs.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := SELECT proj (',' proj)* FROM ident
//!            [WHERE pred] [GROUP BY ident (',' ident)*]
//!            [ORDER BY ident [ASC|DESC]] [LIMIT int]
//! proj    := '*' | ident | agg '(' (ident|'*') ')'
//! agg     := COUNT | SUM | AVG | MIN | MAX
//! pred    := cmp (AND cmp | OR cmp)*        -- left-assoc, AND binds tighter
//! cmp     := ident op literal | ident IS [NOT] NULL
//! op      := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
//! literal := int | float | 'string' | TRUE | FALSE
//! ```

use crate::table::{Schema, Table};
use crate::value::{ColumnType, Value};
use std::collections::BTreeMap;
use std::fmt;

/// SQL layer errors.
#[derive(Debug, PartialEq)]
pub enum SqlError {
    /// Tokenizer/parser failure with context.
    Parse(String),
    /// Referenced column does not exist.
    UnknownColumn(String),
    /// Projection mixes aggregates and bare columns without GROUP BY, etc.
    Semantic(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            SqlError::Semantic(m) => write!(f, "semantic error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// One SELECT projection.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// All columns.
    Star,
    /// A bare column.
    Column(String),
    /// `agg(column)`; `None` column means `COUNT(*)`.
    Aggregate(AggFn, Option<String>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// WHERE expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Cmp {
        column: String,
        op: CmpOp,
        literal: Value,
    },
    IsNull {
        column: String,
        negated: bool,
    },
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub projections: Vec<Projection>,
    pub table: String,
    pub filter: Option<Expr>,
    pub group_by: Vec<String>,
    pub order_by: Option<(String, bool)>, // (column, descending)
    pub limit: Option<usize>,
}

// ---------------------------------------------------------------- tokenizer

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str),
}

fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | ',' | '*' => {
                out.push(Token::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    _ => "*",
                }));
                i += 1;
            }
            '=' => {
                out.push(Token::Sym("="));
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Sym("!="));
                i += 2;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Sym("<="));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(Token::Sym("!="));
                    i += 2;
                } else {
                    out.push(Token::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Sym(">="));
                    i += 2;
                } else {
                    out.push(Token::Sym(">"));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(SqlError::Parse("unterminated string".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                let mut is_float = false;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    if chars[i] == '.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        SqlError::Parse(format!("bad float literal '{text}'"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        SqlError::Parse(format!("bad int literal '{text}'"))
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(SqlError::Parse(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

// ------------------------------------------------------------------- parser

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(SqlError::Parse(format!("expected {kw}, got {other:?}"))),
        }
    }

    fn keyword_is(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, got {other:?}"
            ))),
        }
    }
}

fn agg_of(name: &str) -> Option<AggFn> {
    match name.to_ascii_uppercase().as_str() {
        "COUNT" => Some(AggFn::Count),
        "SUM" => Some(AggFn::Sum),
        "AVG" => Some(AggFn::Avg),
        "MIN" => Some(AggFn::Min),
        "MAX" => Some(AggFn::Max),
        _ => None,
    }
}

/// Parse a SELECT statement.
pub fn parse(input: &str) -> Result<Query, SqlError> {
    let mut p = Parser {
        tokens: tokenize(input)?,
        pos: 0,
    };
    p.expect_keyword("SELECT")?;
    let mut projections = Vec::new();
    loop {
        if matches!(p.peek(), Some(Token::Sym("*"))) {
            p.next();
            projections.push(Projection::Star);
        } else {
            let name = p.ident()?;
            if let (Some(agg), Some(Token::Sym("("))) = (agg_of(&name), p.peek()) {
                p.next(); // (
                let col = if matches!(p.peek(), Some(Token::Sym("*"))) {
                    p.next();
                    None
                } else {
                    Some(p.ident()?)
                };
                match p.next() {
                    Some(Token::Sym(")")) => {}
                    other => return Err(SqlError::Parse(format!("expected ), got {other:?}"))),
                }
                projections.push(Projection::Aggregate(agg, col));
            } else {
                projections.push(Projection::Column(name));
            }
        }
        if matches!(p.peek(), Some(Token::Sym(","))) {
            p.next();
        } else {
            break;
        }
    }
    p.expect_keyword("FROM")?;
    let table = p.ident()?;

    let mut filter = None;
    if p.keyword_is("WHERE") {
        p.next();
        filter = Some(parse_or(&mut p)?);
    }

    let mut group_by = Vec::new();
    if p.keyword_is("GROUP") {
        p.next();
        p.expect_keyword("BY")?;
        loop {
            group_by.push(p.ident()?);
            if matches!(p.peek(), Some(Token::Sym(","))) {
                p.next();
            } else {
                break;
            }
        }
    }

    let mut order_by = None;
    if p.keyword_is("ORDER") {
        p.next();
        p.expect_keyword("BY")?;
        let col = p.ident()?;
        let mut desc = false;
        if p.keyword_is("DESC") {
            p.next();
            desc = true;
        } else if p.keyword_is("ASC") {
            p.next();
        }
        order_by = Some((col, desc));
    }

    let mut limit = None;
    if p.keyword_is("LIMIT") {
        p.next();
        match p.next() {
            Some(Token::Int(n)) if n >= 0 => limit = Some(n as usize),
            other => return Err(SqlError::Parse(format!("bad LIMIT, got {other:?}"))),
        }
    }

    if p.peek().is_some() {
        return Err(SqlError::Parse(format!(
            "trailing tokens starting at {:?}",
            p.peek()
        )));
    }
    Ok(Query {
        projections,
        table,
        filter,
        group_by,
        order_by,
        limit,
    })
}

fn parse_or(p: &mut Parser) -> Result<Expr, SqlError> {
    let mut left = parse_and(p)?;
    while p.keyword_is("OR") {
        p.next();
        let right = parse_and(p)?;
        left = Expr::Or(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_and(p: &mut Parser) -> Result<Expr, SqlError> {
    let mut left = parse_cmp(p)?;
    while p.keyword_is("AND") {
        p.next();
        let right = parse_cmp(p)?;
        left = Expr::And(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_cmp(p: &mut Parser) -> Result<Expr, SqlError> {
    let column = p.ident()?;
    if p.keyword_is("IS") {
        p.next();
        let negated = if p.keyword_is("NOT") {
            p.next();
            true
        } else {
            false
        };
        p.expect_keyword("NULL")?;
        return Ok(Expr::IsNull { column, negated });
    }
    let op = match p.next() {
        Some(Token::Sym("=")) => CmpOp::Eq,
        Some(Token::Sym("!=")) => CmpOp::Ne,
        Some(Token::Sym("<")) => CmpOp::Lt,
        Some(Token::Sym("<=")) => CmpOp::Le,
        Some(Token::Sym(">")) => CmpOp::Gt,
        Some(Token::Sym(">=")) => CmpOp::Ge,
        other => return Err(SqlError::Parse(format!("expected operator, got {other:?}"))),
    };
    let literal = match p.next() {
        Some(Token::Int(v)) => Value::Int(v),
        Some(Token::Float(v)) => Value::Float(v),
        Some(Token::Str(s)) => Value::Text(s),
        Some(Token::Ident(s)) if s.eq_ignore_ascii_case("true") => Value::Bool(true),
        Some(Token::Ident(s)) if s.eq_ignore_ascii_case("false") => Value::Bool(false),
        other => return Err(SqlError::Parse(format!("expected literal, got {other:?}"))),
    };
    Ok(Expr::Cmp {
        column,
        op,
        literal,
    })
}

// ----------------------------------------------------------------- executor

/// Wrapper giving `Value` a total order for grouping keys.
#[derive(Debug, Clone, PartialEq)]
struct OrdValue(Value);
impl Eq for OrdValue {}
impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.sql_cmp(&other.0)
    }
}

fn eval_filter(expr: &Expr, table: &Table, row: usize) -> Result<bool, SqlError> {
    match expr {
        Expr::And(a, b) => Ok(eval_filter(a, table, row)? && eval_filter(b, table, row)?),
        Expr::Or(a, b) => Ok(eval_filter(a, table, row)? || eval_filter(b, table, row)?),
        Expr::IsNull { column, negated } => {
            let col = table
                .schema()
                .index_of(column)
                .ok_or_else(|| SqlError::UnknownColumn(column.clone()))?;
            let is_null = table.cell(row, col) == &Value::Null;
            Ok(is_null != *negated)
        }
        Expr::Cmp {
            column,
            op,
            literal,
        } => {
            let col = table
                .schema()
                .index_of(column)
                .ok_or_else(|| SqlError::UnknownColumn(column.clone()))?;
            let v = table.cell(row, col);
            if v == &Value::Null {
                return Ok(false); // SQL: NULL compares unknown -> filtered
            }
            let ord = v.sql_cmp(literal);
            use std::cmp::Ordering::*;
            Ok(match op {
                CmpOp::Eq => ord == Equal,
                CmpOp::Ne => ord != Equal,
                CmpOp::Lt => ord == Less,
                CmpOp::Le => ord != Greater,
                CmpOp::Gt => ord == Greater,
                CmpOp::Ge => ord != Less,
            })
        }
    }
}

/// Execute a parsed query against a table.
pub fn execute(query: &Query, table: &Table) -> Result<Table, SqlError> {
    // Resolve filter rows.
    let mut rows: Vec<usize> = Vec::new();
    for i in 0..table.n_rows() {
        let keep = match &query.filter {
            Some(f) => eval_filter(f, table, i)?,
            None => true,
        };
        if keep {
            rows.push(i);
        }
    }

    let has_agg = query
        .projections
        .iter()
        .any(|p| matches!(p, Projection::Aggregate(..)));

    let mut result = if has_agg || !query.group_by.is_empty() {
        execute_grouped(query, table, &rows)?
    } else {
        execute_plain(query, table, &rows)?
    };

    // ORDER BY.
    if let Some((col, desc)) = &query.order_by {
        let idx = result
            .schema()
            .index_of(col)
            .ok_or_else(|| SqlError::UnknownColumn(col.clone()))?;
        let mut order: Vec<usize> = (0..result.n_rows()).collect();
        order.sort_by(|&a, &b| {
            let ord = result.cell(a, idx).sql_cmp(result.cell(b, idx));
            if *desc {
                ord.reverse()
            } else {
                ord
            }
        });
        let mut sorted = Table::new(result.schema().clone());
        for i in order {
            sorted.push_row(result.row(i));
        }
        result = sorted;
    }

    // LIMIT.
    if let Some(limit) = query.limit {
        if result.n_rows() > limit {
            let mut limited = Table::new(result.schema().clone());
            for i in 0..limit {
                limited.push_row(result.row(i));
            }
            result = limited;
        }
    }
    Ok(result)
}

fn execute_plain(query: &Query, table: &Table, rows: &[usize]) -> Result<Table, SqlError> {
    // Expand projections into column indices.
    let mut cols: Vec<usize> = Vec::new();
    for p in &query.projections {
        match p {
            Projection::Star => cols.extend(0..table.schema().len()),
            Projection::Column(name) => cols.push(
                table
                    .schema()
                    .index_of(name)
                    .ok_or_else(|| SqlError::UnknownColumn(name.clone()))?,
            ),
            Projection::Aggregate(..) => unreachable!("handled by grouped path"),
        }
    }
    let schema = Schema::new(
        cols.iter()
            .map(|&c| (table.schema().name(c), table.schema().column_type(c)))
            .collect(),
    );
    let mut out = Table::new(schema);
    for &r in rows {
        out.push_row(cols.iter().map(|&c| table.cell(r, c).clone()).collect());
    }
    Ok(out)
}

fn execute_grouped(query: &Query, table: &Table, rows: &[usize]) -> Result<Table, SqlError> {
    // Validate: bare columns must appear in GROUP BY.
    for p in &query.projections {
        if let Projection::Column(name) = p {
            if !query.group_by.contains(name) {
                return Err(SqlError::Semantic(format!(
                    "column {name} must appear in GROUP BY"
                )));
            }
        }
        if matches!(p, Projection::Star) {
            return Err(SqlError::Semantic("SELECT * cannot be aggregated".into()));
        }
    }
    let group_cols: Vec<usize> = query
        .group_by
        .iter()
        .map(|name| {
            table
                .schema()
                .index_of(name)
                .ok_or_else(|| SqlError::UnknownColumn(name.clone()))
        })
        .collect::<Result<_, _>>()?;

    let mut groups: BTreeMap<Vec<OrdValue>, Vec<usize>> = BTreeMap::new();
    for &r in rows {
        let key: Vec<OrdValue> = group_cols
            .iter()
            .map(|&c| OrdValue(table.cell(r, c).clone()))
            .collect();
        groups.entry(key).or_default().push(r);
    }
    // Global aggregate with no GROUP BY: a single (possibly empty) group.
    if group_cols.is_empty() && groups.is_empty() {
        groups.insert(Vec::new(), Vec::new());
    }

    // Output schema.
    let mut schema_cols: Vec<(String, ColumnType)> = Vec::new();
    for p in &query.projections {
        match p {
            Projection::Column(name) => {
                let c = table.schema().index_of(name).unwrap();
                schema_cols.push((name.clone(), table.schema().column_type(c)));
            }
            Projection::Aggregate(agg, col) => {
                let name = match col {
                    Some(c) => format!("{}_{}", agg_name(*agg), c),
                    None => "count".to_string(),
                };
                let ty = match agg {
                    AggFn::Count => ColumnType::Int,
                    AggFn::Sum | AggFn::Avg => ColumnType::Float,
                    AggFn::Min | AggFn::Max => match col {
                        Some(c) => {
                            let idx = table
                                .schema()
                                .index_of(c)
                                .ok_or_else(|| SqlError::UnknownColumn(c.clone()))?;
                            table.schema().column_type(idx)
                        }
                        None => return Err(SqlError::Semantic("MIN/MAX need a column".into())),
                    },
                };
                schema_cols.push((name, ty));
            }
            Projection::Star => unreachable!(),
        }
    }
    let schema = Schema::new(schema_cols.iter().map(|(n, t)| (n.as_str(), *t)).collect());

    let mut out = Table::new(schema);
    for (key, members) in &groups {
        let mut row: Vec<Value> = Vec::with_capacity(query.projections.len());
        for p in &query.projections {
            match p {
                Projection::Column(name) => {
                    let gi = query.group_by.iter().position(|g| g == name).unwrap();
                    row.push(key[gi].0.clone());
                }
                Projection::Aggregate(agg, col) => {
                    row.push(compute_agg(*agg, col.as_deref(), table, members)?);
                }
                Projection::Star => unreachable!(),
            }
        }
        out.push_row(row);
    }
    Ok(out)
}

fn agg_name(agg: AggFn) -> &'static str {
    match agg {
        AggFn::Count => "count",
        AggFn::Sum => "sum",
        AggFn::Avg => "avg",
        AggFn::Min => "min",
        AggFn::Max => "max",
    }
}

fn compute_agg(
    agg: AggFn,
    col: Option<&str>,
    table: &Table,
    rows: &[usize],
) -> Result<Value, SqlError> {
    let col_idx = match col {
        Some(name) => Some(
            table
                .schema()
                .index_of(name)
                .ok_or_else(|| SqlError::UnknownColumn(name.to_string()))?,
        ),
        None => None,
    };
    // Non-null values of the aggregated column.
    let values: Vec<&Value> = match col_idx {
        None => Vec::new(),
        Some(c) => rows
            .iter()
            .map(|&r| table.cell(r, c))
            .filter(|v| **v != Value::Null)
            .collect(),
    };
    Ok(match agg {
        AggFn::Count => match col_idx {
            None => Value::Int(rows.len() as i64),
            Some(_) => Value::Int(values.len() as i64),
        },
        AggFn::Sum => Value::Float(values.iter().filter_map(|v| v.as_f64()).sum()),
        AggFn::Avg => {
            let nums: Vec<f64> = values.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggFn::Min => values
            .iter()
            .min_by(|a, b| a.sql_cmp(b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
        AggFn::Max => values
            .iter()
            .max_by(|a, b| a.sql_cmp(b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx_table() -> Table {
        let mut t = Table::new(Schema::new(vec![
            ("user", ColumnType::Text),
            ("day", ColumnType::Int),
            ("amount", ColumnType::Float),
            ("fraud", ColumnType::Bool),
        ]));
        for (u, d, a, f) in [
            ("zoe", 1, 10.0, false),
            ("zoe", 2, 20.0, true),
            ("sam", 1, 5.0, false),
            ("sam", 2, 15.0, false),
            ("liam", 3, 100.0, true),
        ] {
            t.push_row(vec![u.into(), (d as i64).into(), a.into(), f.into()]);
        }
        t
    }

    fn run(sql: &str) -> Table {
        execute(&parse(sql).unwrap(), &tx_table()).unwrap()
    }

    #[test]
    fn select_star_with_where() {
        let r = run("SELECT * FROM tx WHERE day = 2");
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.schema().len(), 4);
    }

    #[test]
    fn projection_selects_columns() {
        let r = run("SELECT user, amount FROM tx WHERE amount > 10");
        assert_eq!(r.schema().names(), vec!["user", "amount"]);
        assert_eq!(r.n_rows(), 3);
    }

    #[test]
    fn group_by_with_aggregates() {
        let r = run("SELECT user, COUNT(*), SUM(amount) FROM tx GROUP BY user");
        assert_eq!(r.n_rows(), 3);
        // BTreeMap ordering: liam, sam, zoe.
        assert_eq!(r.cell(0, 0).as_str(), Some("liam"));
        assert_eq!(r.cell(1, 0).as_str(), Some("sam"));
        assert_eq!(r.cell(1, 1).as_i64(), Some(2));
        assert_eq!(r.cell(1, 2).as_f64(), Some(20.0));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let r = run("SELECT COUNT(*), AVG(amount), MAX(amount) FROM tx WHERE fraud = true");
        assert_eq!(r.n_rows(), 1);
        assert_eq!(r.cell(0, 0).as_i64(), Some(2));
        assert_eq!(r.cell(0, 1).as_f64(), Some(60.0));
        assert_eq!(r.cell(0, 2).as_f64(), Some(100.0));
    }

    #[test]
    fn and_or_precedence() {
        // AND binds tighter: day = 1 OR (day = 2 AND fraud = true).
        let r = run("SELECT user FROM tx WHERE day = 1 OR day = 2 AND fraud = true");
        assert_eq!(r.n_rows(), 3); // zoe@1, sam@1, zoe@2
    }

    #[test]
    fn order_by_desc_and_limit() {
        let r = run("SELECT user, amount FROM tx ORDER BY amount DESC LIMIT 2");
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.cell(0, 0).as_str(), Some("liam"));
        assert_eq!(r.cell(1, 1).as_f64(), Some(20.0));
    }

    #[test]
    fn is_null_filters() {
        let mut t = tx_table();
        t.push_row(vec![Value::Null, 9.into(), 1.0.into(), false.into()]);
        let q = parse("SELECT day FROM tx WHERE user IS NULL").unwrap();
        let r = execute(&q, &t).unwrap();
        assert_eq!(r.n_rows(), 1);
        let q = parse("SELECT day FROM tx WHERE user IS NOT NULL").unwrap();
        let r = execute(&q, &t).unwrap();
        assert_eq!(r.n_rows(), 5);
    }

    #[test]
    fn unknown_column_is_an_error() {
        let q = parse("SELECT nope FROM tx").unwrap();
        assert!(matches!(
            execute(&q, &tx_table()),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn ungrouped_bare_column_with_aggregate_rejected() {
        let q = parse("SELECT user, COUNT(*) FROM tx").unwrap();
        assert!(matches!(
            execute(&q, &tx_table()),
            Err(SqlError::Semantic(_))
        ));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELEC user FROM tx").is_err());
        assert!(parse("SELECT user FROM tx WHERE").is_err());
        assert!(parse("SELECT user FROM tx LIMIT x").is_err());
        assert!(parse("SELECT user FROM tx WHERE user = 'unterminated").is_err());
        assert!(parse("SELECT user FROM tx extra tokens").is_err());
    }

    #[test]
    fn string_and_comparison_operators() {
        let r = run("SELECT user FROM tx WHERE user = 'zoe' AND amount >= 10");
        assert_eq!(r.n_rows(), 2);
        let r = run("SELECT user FROM tx WHERE user != 'zoe'");
        assert_eq!(r.n_rows(), 3);
        let r = run("SELECT user FROM tx WHERE day <> 1");
        assert_eq!(r.n_rows(), 3);
    }
}
