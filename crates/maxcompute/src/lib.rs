//! # titant-maxcompute — the offline storage & batch compute substrate
//!
//! A laptop-scale analogue of MaxCompute/ODPS (paper §4.2, Figure 4), the
//! platform TitAnt's offline stage runs on. The paper's three logical
//! layers are all present:
//!
//! * **client layer** — [`client::Session`] authenticates a cloud account
//!   and submits jobs, like the web console + HTTP server;
//! * **server layer** — [`job`]'s workers/scheduler split jobs into
//!   prioritised subtasks, register instances in the [`ots`] status table
//!   (`Running` → `Terminated`), and hand subtasks to executors once the
//!   [`fuxi`] resource manager grants slots;
//! * **storage & compute layer** — [`pangu`] is the chunked, replicated
//!   blob store results persist to, and the compute layer executes either
//!   [`sql`] queries (SELECT/WHERE/GROUP BY/JOIN with aggregates — enough
//!   to extract basic features and labels) or [`mapreduce`] jobs over
//!   columnar [`table::Table`]s. SQL runs either single-process or as a
//!   coordinator/worker job fanned over Fuxi slots ([`distsql`]): workers
//!   scan row-range segments and ship decomposable partials (exact sums,
//!   grouped states, bounded top-K), the coordinator merges — results are
//!   bit-identical for any (segments × threads) combination.

pub mod client;
pub mod distsql;
pub mod exact;
pub mod fuxi;
pub mod job;
pub mod mapreduce;
pub mod ots;
pub mod pangu;
pub mod sql;
pub mod table;
pub mod value;

pub use client::{Account, MaxCompute, Session};
pub use distsql::{DistReport, JoinReport};
pub use exact::ExactSum;
pub use fuxi::FuxiStats;
pub use table::{Schema, Table};
pub use value::{ColumnType, Value};
