//! # titant-maxcompute — the offline storage & batch compute substrate
//!
//! A laptop-scale analogue of MaxCompute/ODPS (paper §4.2, Figure 4), the
//! platform TitAnt's offline stage runs on. The paper's three logical
//! layers are all present:
//!
//! * **client layer** — [`client::Session`] authenticates a cloud account
//!   and submits jobs, like the web console + HTTP server;
//! * **server layer** — [`job`]'s workers/scheduler split jobs into
//!   prioritised subtasks, register instances in the [`ots`] status table
//!   (`Running` → `Terminated`), and hand subtasks to executors once the
//!   [`fuxi`] resource manager grants slots;
//! * **storage & compute layer** — [`pangu`] is the chunked, replicated
//!   blob store results persist to, and the compute layer executes either
//!   [`sql`] queries (SELECT/WHERE/GROUP BY with aggregates — enough to
//!   extract basic features and labels) or [`mapreduce`] jobs (how the
//!   transaction network is aggregated) over columnar [`table::Table`]s.

pub mod client;
pub mod fuxi;
pub mod job;
pub mod mapreduce;
pub mod ots;
pub mod pangu;
pub mod sql;
pub mod table;
pub mod value;

pub use client::{Account, MaxCompute, Session};
pub use table::{Schema, Table};
pub use value::{ColumnType, Value};
