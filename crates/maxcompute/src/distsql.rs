//! Distributed SQL execution: the coordinator/worker half of the engine.
//!
//! This is Figure 4's offline stage made scale-out-shaped: the coordinator
//! plans a parsed query once, splits the input into contiguous row-range
//! segments, submits one scan subtask per segment through the prioritized
//! [`Scheduler`] (each subtask runs on an executor thread under a Fuxi
//! slot), and merges the worker partials:
//!
//! * **aggregates** merge their decomposable states (COUNT→sum, SUM→exact
//!   sum, AVG→(exact sum, count), MIN/MAX→first-wins extremum);
//! * **GROUP BY** merges per-segment `BTreeMap`s in the engine's canonical
//!   key order;
//! * **ORDER BY/LIMIT** is a bounded top-K merge — each worker ships at
//!   most LIMIT rows, the coordinator k-way merges ≤ LIMIT·segments rows;
//! * **JOIN** is a partitioned hash join: the coordinator hash-partitions
//!   both sides by join key, one subtask per partition builds and probes,
//!   and partition outputs k-way merge back into probe-row order.
//!
//! Workers run [`sql::execute_partial`] — the *same* code the
//! single-process engine runs with one segment — and every merge step is
//! either order-independent (exact sums) or resolved in deterministic
//! segment/row order, so results are **bit-identical for any
//! (segments × executor threads) combination**. The property tests and the
//! `offline_sql` bench gate on exactly that, via `Table::canonical_bytes`.

use crate::job::Scheduler;
use crate::sql::{self, ExecPlan, Partial, Query, Shape, SqlError};
use crate::table::Table;
use crate::value::Value;
use serde::Serialize;
use std::ops::Range;
use std::sync::Arc;

/// Counted work of one distributed query — the 1-core-container bench
/// gates on these instead of wall clock: scans must be conserved, merges
/// must scale with segments, top-K must stay bounded.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct DistReport {
    /// Row-range segments the scan was split into.
    pub segments: usize,
    /// Scan subtasks submitted to the scheduler (== segments).
    pub subtasks: u64,
    /// Rows examined across all scan workers (conserved vs one full scan).
    pub rows_scanned: u64,
    /// Worker partials folded by the coordinator.
    pub partials_merged: u64,
    /// Group keys that appeared in more than one partial.
    pub group_keys_merged: u64,
    /// Rows shipped by workers into the final merge. For ORDER BY + LIMIT
    /// this is ≤ LIMIT · segments where a full sort ships every row.
    pub rows_materialized: u64,
    /// Set when the query had a JOIN stage.
    pub join: Option<JoinReport>,
}

/// Counted work of the partitioned hash-join stage.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct JoinReport {
    /// Hash partitions (== join subtasks).
    pub partitions: usize,
    /// Build-side rows hashed into partitions (non-NULL keys).
    pub build_rows: u64,
    /// Probe-side rows hashed into partitions (non-NULL keys).
    pub probe_rows: u64,
    /// Rows with NULL join keys dropped (inner-join semantics).
    pub null_keys_dropped: u64,
    /// Joined rows produced.
    pub output_rows: u64,
}

/// Execute a parsed query as a coordinator/worker job over `segments`
/// row-range segments. `right` supplies the JOIN build table when the
/// query has a JOIN clause. Results are byte-identical to
/// [`sql::execute_with`] on the same inputs for **any** segment count and
/// executor pool size.
pub fn execute_distributed(
    query: &Query,
    table: Arc<Table>,
    right: Option<Arc<Table>>,
    scheduler: &Scheduler,
    owner: &str,
    segments: usize,
) -> Result<(Table, DistReport), SqlError> {
    let segments = segments.max(1);
    let mut report = DistReport {
        segments,
        ..DistReport::default()
    };

    // JOIN stage: partitioned hash join producing the scan input.
    let input: Arc<Table> = match (&query.join, right) {
        (Some(join), Some(build)) => {
            let (joined, jr) = distributed_join(join, &table, &build, scheduler, owner, segments)?;
            report.join = Some(jr);
            Arc::new(joined)
        }
        (Some(join), None) => {
            return Err(SqlError::Semantic(format!(
                "query joins table {} but no right-side table was provided",
                join.table
            )))
        }
        (None, _) => table,
    };

    // Plan once at the coordinator; workers are infallible after this.
    let plan = Arc::new(sql::plan(query, input.schema())?);

    // One scan subtask per contiguous row-range segment. An empty table
    // still gets one (empty) segment so global aggregates see their
    // neutral empty group.
    let mut ranges: Vec<Range<usize>> = titant_parallel::chunk_ranges(input.n_rows(), segments);
    if ranges.is_empty() {
        ranges.push(0..0);
    }
    let tasks: Vec<_> = ranges
        .into_iter()
        .map(|range| {
            let plan = Arc::clone(&plan);
            let input = Arc::clone(&input);
            move || sql::execute_partial(&plan, &input, range)
        })
        .collect();
    report.subtasks = tasks.len() as u64;
    let partials: Vec<Partial> = scheduler.run_collect(
        owner,
        &format!("distsql scan[{segments}]: {}", describe(&plan)),
        3,
        tasks,
    );
    for p in &partials {
        report.rows_scanned += p.scanned;
    }

    let (out, stats) = sql::finish(&plan, partials);
    report.partials_merged = stats.partials;
    report.group_keys_merged = stats.group_keys_merged;
    report.rows_materialized = stats.rows_materialized;
    Ok((out, report))
}

fn describe(plan: &ExecPlan) -> &'static str {
    match plan.shape {
        Shape::Grouped { .. } => "grouped aggregation",
        Shape::Plain { .. } => "projection",
    }
}

/// Partitioned hash join. The coordinator hash-partitions both sides' row
/// indices by join key (NULL keys dropped — inner-join semantics); one
/// subtask per partition builds a key map from its build rows and probes
/// its probe rows in row order; the coordinator k-way merges partition
/// outputs by probe row index. Since `sql::join_hash` is consistent with
/// `sql_cmp` equality, an equality class lands wholly in one partition,
/// and the merged output row order is exactly the single-partition
/// reference order.
fn distributed_join(
    join: &sql::JoinClause,
    left: &Arc<Table>,
    right: &Arc<Table>,
    scheduler: &Scheduler,
    owner: &str,
    partitions: usize,
) -> Result<(Table, JoinReport), SqlError> {
    let jp = Arc::new(sql::plan_join(join, left.schema(), right.schema())?);
    let partitions = partitions.max(1);
    let mut report = JoinReport {
        partitions,
        ..JoinReport::default()
    };

    let mut left_parts: Vec<Vec<usize>> = vec![Vec::new(); partitions];
    let mut right_parts: Vec<Vec<usize>> = vec![Vec::new(); partitions];
    for r in 0..left.n_rows() {
        let k = left.cell(r, jp.left_col);
        if k == &Value::Null {
            report.null_keys_dropped += 1;
            continue;
        }
        report.probe_rows += 1;
        left_parts[(sql::join_hash(k) % partitions as u64) as usize].push(r);
    }
    for r in 0..right.n_rows() {
        let k = right.cell(r, jp.right_col);
        if k == &Value::Null {
            report.null_keys_dropped += 1;
            continue;
        }
        report.build_rows += 1;
        right_parts[(sql::join_hash(k) % partitions as u64) as usize].push(r);
    }

    let tasks: Vec<_> = left_parts
        .into_iter()
        .zip(right_parts)
        .map(|(probe, build)| {
            let jp = Arc::clone(&jp);
            let left = Arc::clone(left);
            let right = Arc::clone(right);
            move || sql::join_probe(&jp, &left, &right, &probe, &build)
        })
        .collect();
    let outputs: Vec<Vec<(usize, Vec<Value>)>> = scheduler.run_collect(
        owner,
        &format!("distsql join[{partitions}]: {}", join.table),
        3,
        tasks,
    );

    // K-way merge by probe (left) row index; each partition's output is
    // already sorted by it, and indices are globally unique.
    let mut heads = vec![0usize; outputs.len()];
    let mut rows: Vec<Vec<Value>> = Vec::new();
    loop {
        let mut best: Option<usize> = None;
        for (p, out) in outputs.iter().enumerate() {
            if heads[p] >= out.len() {
                continue;
            }
            best = match best {
                None => Some(p),
                Some(b) => {
                    if out[heads[p]].0 < outputs[b][heads[b]].0 {
                        Some(p)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let Some(b) = best else { break };
        rows.push(outputs[b][heads[b]].1.clone());
        heads[b] += 1;
    }
    report.output_rows = rows.len() as u64;
    Ok((Table::from_rows(jp.schema.clone(), rows), report))
}
