//! Columnar in-memory tables.

use crate::value::{ColumnType, Value};
use serde::{Deserialize, Serialize};

/// A table schema: ordered, named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Build from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate column names.
    pub fn new(columns: Vec<(&str, ColumnType)>) -> Self {
        let columns: Vec<(String, ColumnType)> = columns
            .into_iter()
            .map(|(n, t)| (n.to_string(), t))
            .collect();
        for i in 0..columns.len() {
            for j in (i + 1)..columns.len() {
                assert_ne!(columns[i].0, columns[j].0, "duplicate column name");
            }
        }
        Self { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Column name at index.
    pub fn name(&self, i: usize) -> &str {
        &self.columns[i].0
    }

    /// Column type at index.
    pub fn column_type(&self, i: usize) -> ColumnType {
        self.columns[i].1
    }

    /// All column names.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }
}

/// A columnar table: one `Vec<Value>` per column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    columns: Vec<Vec<Value>>,
}

impl Table {
    /// Empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let n = schema.len();
        Self {
            schema,
            columns: vec![Vec::new(); n],
        }
    }

    /// Build a table by pushing `rows` in order.
    ///
    /// # Panics
    /// Same contract as [`Table::push_row`].
    pub fn from_rows<I: IntoIterator<Item = Vec<Value>>>(schema: Schema, rows: I) -> Self {
        let mut t = Table::new(schema);
        for row in rows {
            t.push_row(row);
        }
        t
    }

    /// Canonical byte encoding of schema + contents. Two tables are
    /// **byte-identical** exactly when their encodings are equal: floats
    /// are encoded by IEEE bit pattern (so `-0.0 ≠ 0.0` and NaN payloads
    /// count), which is the equality the distributed SQL engine is gated
    /// on against its single-process reference.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let push_str = |out: &mut Vec<u8>, s: &str| {
            out.extend((s.len() as u64).to_le_bytes());
            out.extend(s.as_bytes());
        };
        out.extend((self.schema.len() as u64).to_le_bytes());
        for c in 0..self.schema.len() {
            push_str(&mut out, self.schema.name(c));
            out.push(match self.schema.column_type(c) {
                ColumnType::Int => 1,
                ColumnType::Float => 2,
                ColumnType::Text => 3,
                ColumnType::Bool => 4,
            });
        }
        out.extend((self.n_rows() as u64).to_le_bytes());
        for col in &self.columns {
            for v in col {
                match v {
                    Value::Null => out.push(0),
                    Value::Int(i) => {
                        out.push(1);
                        out.extend(i.to_le_bytes());
                    }
                    Value::Float(f) => {
                        out.push(2);
                        out.extend(f.to_bits().to_le_bytes());
                    }
                    Value::Text(s) => {
                        out.push(3);
                        push_str(&mut out, s);
                    }
                    Value::Bool(b) => {
                        out.push(4);
                        out.push(*b as u8);
                    }
                }
            }
        }
        out
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics when the row width mismatches the schema or a value's type
    /// mismatches the column type (Null always allowed).
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.schema.len(), "row width mismatch");
        for (i, v) in row.iter().enumerate() {
            if let Some(t) = v.column_type() {
                assert_eq!(
                    t,
                    self.schema.column_type(i),
                    "type mismatch in column {}",
                    self.schema.name(i)
                );
            }
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// Cell accessor.
    pub fn cell(&self, row: usize, col: usize) -> &Value {
        &self.columns[col][row]
    }

    /// A whole column.
    pub fn column(&self, col: usize) -> &[Value] {
        &self.columns[col]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&[Value]> {
        self.schema.index_of(name).map(|i| self.column(i))
    }

    /// Materialise row `i`.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[i].clone()).collect()
    }

    /// Iterate rows (materialised; fine at this scale).
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.n_rows()).map(move |i| self.row(i))
    }

    /// Split row indices into `n` contiguous partitions for parallel /
    /// subtask execution.
    pub fn partitions(&self, n: usize) -> Vec<std::ops::Range<usize>> {
        let n = n.max(1);
        let rows = self.n_rows();
        let chunk = rows.div_ceil(n).max(1);
        (0..n)
            .map(|i| (i * chunk).min(rows)..((i + 1) * chunk).min(rows))
            .filter(|r| !r.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users_table() -> Table {
        let mut t = Table::new(Schema::new(vec![
            ("id", ColumnType::Int),
            ("city", ColumnType::Text),
            ("amount", ColumnType::Float),
        ]));
        t.push_row(vec![1.into(), "hz".into(), 10.5.into()]);
        t.push_row(vec![2.into(), "bj".into(), 20.0.into()]);
        t.push_row(vec![3.into(), Value::Null, 30.0.into()]);
        t
    }

    #[test]
    fn push_and_access() {
        let t = users_table();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.cell(1, 1), &Value::Text("bj".into()));
        assert_eq!(t.column_by_name("amount").unwrap().len(), 3);
        assert!(t.column_by_name("nope").is_none());
        assert_eq!(t.row(0), vec![1.into(), "hz".into(), 10.5.into()]);
    }

    #[test]
    fn nulls_are_allowed_in_any_column() {
        let t = users_table();
        assert_eq!(t.cell(2, 1), &Value::Null);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_rejected() {
        let mut t = users_table();
        t.push_row(vec![4.into(), 9i64.into(), 1.0.into()]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_rejected() {
        let mut t = users_table();
        t.push_row(vec![4.into()]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        Schema::new(vec![("a", ColumnType::Int), ("a", ColumnType::Int)]);
    }

    #[test]
    fn partitions_cover_all_rows() {
        let t = users_table();
        let parts = t.partitions(2);
        let total: usize = parts.iter().map(|r| r.len()).sum();
        assert_eq!(total, 3);
        let parts_many = t.partitions(10);
        let total: usize = parts_many.iter().map(|r| r.len()).sum();
        assert_eq!(total, 3);
        assert!(t.partitions(0).len() == 1);
    }
}
