//! The client layer: accounts, authenticated sessions, and the submit
//! paths for SQL and MapReduce jobs.
//!
//! Per Figure 4: "developers can login with their cloud account and submit
//! jobs by web console in client layer, where HTTP server receives the
//! command"; authentication failures never reach the server layer.

use crate::distsql::{self, DistReport};
use crate::fuxi::{Fuxi, FuxiStats};
use crate::job::Scheduler;
use crate::mapreduce::{run_mapreduce, MapFn, ReduceFn};
use crate::ots::Ots;
use crate::pangu::Pangu;
use crate::sql;
use crate::table::{Schema, Table};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Cluster errors surfaced to clients.
#[derive(Debug)]
pub enum McError {
    /// Bad account or secret.
    AuthFailed,
    /// Referenced table does not exist.
    UnknownTable(String),
    /// SQL failure.
    Sql(sql::SqlError),
    /// Blob store failure.
    Pangu(crate::pangu::PanguError),
}

impl std::fmt::Display for McError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McError::AuthFailed => write!(f, "authentication failed"),
            McError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            McError::Sql(e) => write!(f, "{e}"),
            McError::Pangu(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for McError {}

/// A cloud account (name + secret).
#[derive(Debug, Clone)]
pub struct Account {
    pub name: String,
    secret: String,
}

impl Account {
    /// Create an account descriptor.
    pub fn new(name: &str, secret: &str) -> Self {
        Self {
            name: name.to_string(),
            secret: secret.to_string(),
        }
    }
}

/// The MaxCompute cluster facade.
pub struct MaxCompute {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    accounts: Mutex<HashMap<String, String>>,
    scheduler: Scheduler,
    fuxi: Fuxi,
    ots: Arc<Ots>,
    pangu: Arc<Pangu>,
}

impl MaxCompute {
    /// Boot a cluster: `machines` × `slots_per_machine` compute slots,
    /// `datanodes` Pangu nodes.
    pub fn new(machines: usize, slots_per_machine: usize, datanodes: usize) -> Self {
        let fuxi = Fuxi::new(machines, slots_per_machine);
        let ots = Arc::new(Ots::new());
        let scheduler =
            Scheduler::new(fuxi.clone(), Arc::clone(&ots), machines * slots_per_machine);
        Self {
            tables: RwLock::new(HashMap::new()),
            accounts: Mutex::new(HashMap::new()),
            scheduler,
            fuxi,
            ots,
            pangu: Arc::new(Pangu::new(
                datanodes.max(3),
                1 << 16,
                3.min(datanodes.max(1)),
            )),
        }
    }

    /// Register an account.
    pub fn create_account(&self, account: &Account) {
        self.accounts
            .lock()
            .insert(account.name.clone(), account.secret.clone());
    }

    /// Authenticate and open a session (the web-console login).
    pub fn login(&self, name: &str, secret: &str) -> Result<Session<'_>, McError> {
        match self.accounts.lock().get(name) {
            Some(s) if s == secret => Ok(Session {
                mc: self,
                account: name.to_string(),
            }),
            _ => Err(McError::AuthFailed),
        }
    }

    /// The instance status table (observability).
    pub fn ots(&self) -> &Ots {
        &self.ots
    }

    /// The resource manager (observability).
    pub fn fuxi(&self) -> &Fuxi {
        &self.fuxi
    }

    /// Scheduling-pressure snapshot (peak slots, allocations, slot-wait).
    pub fn fuxi_stats(&self) -> FuxiStats {
        self.fuxi.stats()
    }
}

/// An authenticated session.
pub struct Session<'a> {
    mc: &'a MaxCompute,
    account: String,
}

impl Session<'_> {
    /// The logged-in account name.
    pub fn account(&self) -> &str {
        &self.account
    }

    /// Create or replace a table.
    pub fn create_table(&self, name: &str, table: Table) {
        self.mc
            .tables
            .write()
            .insert(name.to_string(), Arc::new(table));
    }

    /// Fetch a table snapshot.
    pub fn table(&self, name: &str) -> Result<Arc<Table>, McError> {
        self.mc
            .tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| McError::UnknownTable(name.to_string()))
    }

    /// Run a SQL query through the full job path (OTS registration,
    /// scheduler, Fuxi slot, executor) as **one** subtask and wait for the
    /// result. This is the single-process reference engine; queries with a
    /// JOIN clause resolve the right-side table from the catalog.
    pub fn sql(&self, query: &str) -> Result<Table, McError> {
        let parsed = sql::parse(query).map_err(McError::Sql)?;
        let input = self.table(&parsed.table)?;
        let right = match &parsed.join {
            Some(j) => Some(self.table(&j.table)?),
            None => None,
        };
        let mut results = self.mc.scheduler.run_collect(
            &self.account,
            query,
            3,
            vec![move || sql::execute_with(&parsed, &input, right.as_deref())],
        );
        results
            .pop()
            .expect("subtask must have run")
            .map_err(McError::Sql)
    }

    /// Run a SQL query as a coordinator/worker job: the scan (and JOIN, if
    /// any) fans out over `segments` prioritized Fuxi subtasks and the
    /// coordinator merges the partials. The result is byte-identical to
    /// [`Session::sql`] for any `segments` and any executor pool size.
    pub fn sql_distributed(&self, query: &str, segments: usize) -> Result<Table, McError> {
        self.sql_distributed_with_stats(query, segments)
            .map(|(table, _)| table)
    }

    /// [`Session::sql_distributed`], also returning the counted-work
    /// report (rows scanned, partials merged, top-K rows materialized).
    pub fn sql_distributed_with_stats(
        &self,
        query: &str,
        segments: usize,
    ) -> Result<(Table, DistReport), McError> {
        let parsed = sql::parse(query).map_err(McError::Sql)?;
        let input = self.table(&parsed.table)?;
        let right = match &parsed.join {
            Some(j) => Some(self.table(&j.table)?),
            None => None,
        };
        distsql::execute_distributed(
            &parsed,
            input,
            right,
            &self.mc.scheduler,
            &self.account,
            segments,
        )
        .map_err(McError::Sql)
    }

    /// Run a MapReduce job over a stored table (the transaction-network
    /// construction path), occupying `parallelism` Fuxi slots.
    pub fn mapreduce<K, V>(
        &self,
        input_table: &str,
        output_schema: Schema,
        map: &MapFn<K, V>,
        reduce: &ReduceFn<K, V>,
        parallelism: usize,
    ) -> Result<Table, McError>
    where
        K: Ord + Send + Clone,
        V: Send + Clone,
    {
        let input = self.table(input_table)?;
        let instance = self
            .mc
            .ots
            .register(&self.account, &format!("mapreduce over {input_table}"));
        let slots = parallelism.clamp(1, self.mc.fuxi.total_slots());
        let _alloc = self.mc.fuxi.allocate(slots);
        let out = run_mapreduce(&input, output_schema, map, reduce, slots);
        self.mc
            .ots
            .set_status(instance, crate::ots::InstanceStatus::Terminated);
        Ok(out)
    }

    /// Persist a named blob to Pangu (model files, embeddings).
    pub fn put_blob(&self, name: &str, data: &[u8]) -> Result<(), McError> {
        self.mc.pangu.put(name, data).map_err(McError::Pangu)
    }

    /// Read a named blob back from Pangu.
    pub fn get_blob(&self, name: &str) -> Result<Vec<u8>, McError> {
        self.mc.pangu.get(name).map_err(McError::Pangu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ColumnType, Value};

    fn cluster_with_table() -> MaxCompute {
        let mc = MaxCompute::new(2, 2, 3);
        mc.create_account(&Account::new("ant", "s3cret"));
        let session = mc.login("ant", "s3cret").unwrap();
        let mut t = Table::new(Schema::new(vec![
            ("payer", ColumnType::Int),
            ("payee", ColumnType::Int),
            ("amount", ColumnType::Float),
        ]));
        for (a, b, amt) in [(1, 2, 10.0), (1, 2, 4.0), (3, 2, 6.0)] {
            t.push_row(vec![(a as i64).into(), (b as i64).into(), amt.into()]);
        }
        session.create_table("tx", t);
        mc
    }

    #[test]
    fn login_enforces_credentials() {
        let mc = cluster_with_table();
        assert!(mc.login("ant", "wrong").is_err());
        assert!(mc.login("nobody", "s3cret").is_err());
        assert!(mc.login("ant", "s3cret").is_ok());
    }

    #[test]
    fn sql_path_runs_through_scheduler_and_ots() {
        let mc = cluster_with_table();
        let session = mc.login("ant", "s3cret").unwrap();
        let before = mc.ots().count();
        let result = session
            .sql("SELECT payee, SUM(amount) FROM tx GROUP BY payee")
            .unwrap();
        assert_eq!(result.n_rows(), 1);
        assert_eq!(result.cell(0, 1).as_f64(), Some(20.0));
        assert_eq!(mc.ots().count(), before + 1);
        assert!(mc.ots().running().is_empty(), "instance must terminate");
    }

    #[test]
    fn sql_errors_propagate() {
        let mc = cluster_with_table();
        let session = mc.login("ant", "s3cret").unwrap();
        assert!(matches!(
            session.sql("SELECT x FROM missing"),
            Err(McError::UnknownTable(_))
        ));
        assert!(matches!(
            session.sql("SELECT nope FROM tx"),
            Err(McError::Sql(_))
        ));
    }

    #[test]
    fn mapreduce_builds_weighted_edges() {
        let mc = cluster_with_table();
        let session = mc.login("ant", "s3cret").unwrap();
        let out = session
            .mapreduce(
                "tx",
                Schema::new(vec![
                    ("payer", ColumnType::Int),
                    ("payee", ColumnType::Int),
                    ("weight", ColumnType::Int),
                ]),
                &|row: &[Value]| vec![((row[0].as_i64().unwrap(), row[1].as_i64().unwrap()), 1u32)],
                &|k: &(i64, i64), vs: &[u32]| {
                    vec![vec![k.0.into(), k.1.into(), (vs.len() as i64).into()]]
                },
                4,
            )
            .unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.cell(0, 2).as_i64(), Some(2)); // edge 1->2 collapsed
    }

    #[test]
    fn blobs_round_trip_through_pangu() {
        let mc = cluster_with_table();
        let session = mc.login("ant", "s3cret").unwrap();
        session.put_blob("model-v1", b"weights").unwrap();
        assert_eq!(session.get_blob("model-v1").unwrap(), b"weights");
        assert!(session.get_blob("model-v0").is_err());
    }
}
