//! OTS — the Open Table Service keeping every job instance's status.
//!
//! Per the paper (§4.2): "scheduler registers the instance in Open Table
//! Service (OTS) via SQL planner and its status is set as 'running'
//! simultaneously. OTS maintains the status of all the instances. […] the
//! executor updates the status of the instance as 'terminated'".

use parking_lot::RwLock;
use std::collections::HashMap;
use std::time::Instant;

/// Lifecycle states of a job instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceStatus {
    Running,
    Terminated,
    Failed,
}

/// One registered instance.
#[derive(Debug, Clone)]
pub struct InstanceRecord {
    pub id: u64,
    pub owner: String,
    pub description: String,
    pub status: InstanceStatus,
    pub registered_at: Instant,
    pub finished_at: Option<Instant>,
}

/// The instance status table.
#[derive(Default)]
pub struct Ots {
    inner: RwLock<OtsInner>,
}

#[derive(Default)]
struct OtsInner {
    next_id: u64,
    instances: HashMap<u64, InstanceRecord>,
}

impl Ots {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new instance as `Running`; returns its instance id.
    pub fn register(&self, owner: &str, description: &str) -> u64 {
        let mut inner = self.inner.write();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.instances.insert(
            id,
            InstanceRecord {
                id,
                owner: owner.to_string(),
                description: description.to_string(),
                status: InstanceStatus::Running,
                registered_at: Instant::now(),
                finished_at: None,
            },
        );
        id
    }

    /// Update an instance's status. Terminal states stamp `finished_at`.
    ///
    /// # Panics
    /// Panics on an unknown instance id — a scheduler bug, not user error.
    pub fn set_status(&self, id: u64, status: InstanceStatus) {
        let mut inner = self.inner.write();
        let rec = inner
            .instances
            .get_mut(&id)
            .unwrap_or_else(|| panic!("unknown instance {id}"));
        rec.status = status;
        if status != InstanceStatus::Running {
            rec.finished_at = Some(Instant::now());
        }
    }

    /// Fetch a snapshot of an instance.
    pub fn get(&self, id: u64) -> Option<InstanceRecord> {
        self.inner.read().instances.get(&id).cloned()
    }

    /// All instances currently `Running`.
    pub fn running(&self) -> Vec<InstanceRecord> {
        self.inner
            .read()
            .instances
            .values()
            .filter(|r| r.status == InstanceStatus::Running)
            .cloned()
            .collect()
    }

    /// Total instances ever registered.
    pub fn count(&self) -> usize {
        self.inner.read().instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_starts_running() {
        let ots = Ots::new();
        let id = ots.register("alice", "select * from t");
        let rec = ots.get(id).unwrap();
        assert_eq!(rec.status, InstanceStatus::Running);
        assert_eq!(rec.owner, "alice");
        assert!(rec.finished_at.is_none());
        assert_eq!(ots.running().len(), 1);
    }

    #[test]
    fn terminate_stamps_finish_time() {
        let ots = Ots::new();
        let id = ots.register("a", "job");
        ots.set_status(id, InstanceStatus::Terminated);
        let rec = ots.get(id).unwrap();
        assert_eq!(rec.status, InstanceStatus::Terminated);
        assert!(rec.finished_at.is_some());
        assert!(ots.running().is_empty());
    }

    #[test]
    fn ids_are_unique_and_counted() {
        let ots = Ots::new();
        let a = ots.register("a", "x");
        let b = ots.register("a", "y");
        assert_ne!(a, b);
        assert_eq!(ots.count(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown instance")]
    fn unknown_instance_panics() {
        Ots::new().set_status(99, InstanceStatus::Failed);
    }
}
