//! Exact, order-independent `f64` accumulation.
//!
//! The distributed SQL engine merges per-segment partial aggregates, so a
//! `SUM`/`AVG` computed over 4 segments adds the same values in a different
//! association than 1 segment would — and IEEE-754 addition is not
//! associative. To keep results **bit-identical for every segment count**
//! (the acceptance gate of the coordinator/worker engine), sums are
//! accumulated in a Kulisch-style fixed-point accumulator: a 2176-bit
//! signed integer covering the full magnitude range of `f64`
//! (`2^-1074 ..= 2^1023` per addend). Every finite double is added
//! *exactly*; the accumulator state is a pure function of the multiset of
//! addends, so partial accumulators merge associatively and the final
//! rounding (round-to-nearest-even) is deterministic no matter how the
//! values were partitioned.
//!
//! Non-finite addends are tallied separately with IEEE semantics: any NaN,
//! or both `+∞` and `-∞`, poison the sum to NaN; otherwise a lone infinity
//! sign wins. This matches sequential `f64` addition of the same multiset.

/// 32 value bits per limb, stored in `i64` so carries can be deferred.
const LIMB_BITS: usize = 32;
/// 68 limbs = 2176 bits: bit 0 is `2^-1074`, the top mantissa bit of the
/// largest finite double lands at bit 2097, leaving ~78 bits of headroom
/// for deferred carries and huge addend counts.
const LIMBS: usize = 68;
/// Normalize after this many deferred adds (each add can grow a limb by
/// `< 2^32`; `2^32 · 2^25 = 2^57` stays far from `i64` overflow).
const NORM_EVERY: u32 = 1 << 25;

/// An exact `f64` sum. `add` values in any order, `merge` partial sums in
/// any association — [`ExactSum::value`] is identical regardless.
#[derive(Debug, Clone)]
pub struct ExactSum {
    /// Signed base-2^32 limbs of `sum × 2^1074`, little-endian.
    limbs: Vec<i64>,
    /// Adds since the last carry normalization.
    pending: u32,
    pos_inf: u64,
    neg_inf: u64,
    nan: u64,
}

impl Default for ExactSum {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactSum {
    /// The empty sum (`value() == 0.0`).
    pub fn new() -> Self {
        Self {
            limbs: vec![0i64; LIMBS],
            pending: 0,
            pos_inf: 0,
            neg_inf: 0,
            nan: 0,
        }
    }

    /// Add one addend exactly.
    pub fn add(&mut self, x: f64) {
        let bits = x.to_bits();
        let neg = bits >> 63 == 1;
        let exp = ((bits >> 52) & 0x7FF) as usize;
        let frac = bits & ((1u64 << 52) - 1);
        if exp == 0x7FF {
            if frac != 0 {
                self.nan += 1;
            } else if neg {
                self.neg_inf += 1;
            } else {
                self.pos_inf += 1;
            }
            return;
        }
        if exp == 0 && frac == 0 {
            return; // ±0 contributes nothing
        }
        // value = m × 2^(e-1075); in the ×2^1074 frame its low bit sits at
        // bit e-1 (subnormals behave as e = 1).
        let (m, e) = if exp == 0 {
            (frac, 1)
        } else {
            (frac | 1 << 52, exp)
        };
        let bit0 = e - 1;
        let (limb0, shift) = (bit0 / LIMB_BITS, bit0 % LIMB_BITS);
        let wide = (m as u128) << shift; // ≤ 85 bits → 3 limbs
        for k in 0..3 {
            let chunk = ((wide >> (LIMB_BITS * k)) & 0xFFFF_FFFF) as i64;
            if chunk != 0 {
                if neg {
                    self.limbs[limb0 + k] -= chunk;
                } else {
                    self.limbs[limb0 + k] += chunk;
                }
            }
        }
        self.pending += 1;
        if self.pending >= NORM_EVERY {
            self.normalize();
        }
    }

    /// Fold another partial sum in. Exact, so `merge` is associative and
    /// commutative with `add`.
    pub fn merge(&mut self, other: &ExactSum) {
        let mut other = other.clone();
        other.normalize();
        self.normalize();
        for (a, b) in self.limbs.iter_mut().zip(other.limbs.iter()) {
            *a += *b;
        }
        self.pending = 2;
        self.pos_inf += other.pos_inf;
        self.neg_inf += other.neg_inf;
        self.nan += other.nan;
    }

    /// Propagate deferred carries so every limb is back in `[0, 2^32)`
    /// (two's-complement wraparound for negative totals).
    fn normalize(&mut self) {
        let mut carry = 0i64;
        for l in self.limbs.iter_mut() {
            let v = *l + carry;
            carry = v >> LIMB_BITS; // arithmetic shift = floor div
            *l = v & 0xFFFF_FFFF;
        }
        // With the headroom limbs the total magnitude stays below 2^2175,
        // so the out-carry can only be the two's-complement sign borrow.
        debug_assert!(carry == 0 || carry == -1, "accumulator overflow");
        if carry == -1 {
            // Keep the borrow inside the limb array: fold it into the top
            // limb so the representation stays self-contained.
            *self.limbs.last_mut().expect("limbs") -= 1i64 << LIMB_BITS;
        }
        self.pending = 0;
    }

    /// Round the exact sum to the nearest `f64` (ties to even).
    pub fn value(&self) -> f64 {
        if self.nan > 0 || (self.pos_inf > 0 && self.neg_inf > 0) {
            return f64::NAN;
        }
        if self.pos_inf > 0 {
            return f64::INFINITY;
        }
        if self.neg_inf > 0 {
            return f64::NEG_INFINITY;
        }
        let mut acc = self.clone();
        acc.normalize();
        // Sign: after normalization every limb is in [0, 2^32) except a
        // negative top limb, which marks a negative total.
        let negative = *acc.limbs.last().expect("limbs") < 0;
        let mag: Vec<u32> = if negative {
            // magnitude = 2^2176 - unsigned(limbs): two's-complement negate.
            let mut carry = 1u64;
            acc.limbs
                .iter()
                .map(|l| {
                    let v = (!(*l as u32)) as u64 + carry;
                    carry = v >> LIMB_BITS;
                    v as u32
                })
                .collect()
        } else {
            acc.limbs.iter().map(|l| *l as u32).collect()
        };
        let Some(h) = mag.iter().rposition(|&l| l != 0) else {
            return 0.0;
        };
        let top_bit = h * LIMB_BITS + (31 - mag[h].leading_zeros() as usize);
        let bit = |i: usize| -> u64 { ((mag[i / LIMB_BITS] >> (i % LIMB_BITS)) & 1) as u64 };
        let sign_bit = if negative { 1u64 << 63 } else { 0 };

        if top_bit <= 52 {
            // The integer fits in 53 bits: exactly a subnormal (or the
            // smallest normals), whose IEEE encoding is the integer itself.
            let mut x = 0u64;
            for i in (0..=top_bit).rev() {
                x = (x << 1) | bit(i);
            }
            return f64::from_bits(sign_bit | x);
        }

        // 53-bit mantissa [top_bit-52 ..= top_bit], round-to-nearest-even
        // on the guard bit with a sticky OR of everything below it.
        let mut mant = 0u64;
        for i in ((top_bit - 52)..=top_bit).rev() {
            mant = (mant << 1) | bit(i);
        }
        let guard = bit(top_bit - 53) == 1;
        let cut = top_bit - 53;
        let (cut_limb, cut_off) = (cut / LIMB_BITS, cut % LIMB_BITS);
        let mut sticky = cut_off > 0 && (mag[cut_limb] & ((1u32 << cut_off) - 1)) != 0;
        if !sticky {
            sticky = mag[..cut_limb].iter().any(|&l| l != 0);
        }
        let mut b = top_bit as u64;
        if guard && (sticky || mant & 1 == 1) {
            mant += 1;
            if mant == 1 << 53 {
                mant >>= 1;
                b += 1;
            }
        }
        let e_unbiased = b as i64 - 1074;
        if e_unbiased > 1023 {
            return if negative {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            };
        }
        let exp_field = (e_unbiased + 1023) as u64; // ≥ 2 because top_bit ≥ 53
        f64::from_bits(sign_bit | (exp_field << 52) | (mant & ((1u64 << 52) - 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_of(values: &[f64]) -> f64 {
        let mut s = ExactSum::new();
        for &v in values {
            s.add(v);
        }
        s.value()
    }

    #[test]
    fn matches_naive_sum_on_exact_inputs() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64) - 500.0).collect();
        assert_eq!(exact_of(&values), values.iter().sum::<f64>());
        assert_eq!(exact_of(&[]), 0.0);
        assert_eq!(exact_of(&[0.0, -0.0]), 0.0);
        assert_eq!(exact_of(&[2.5]), 2.5);
        assert_eq!(exact_of(&[-2.5]), -2.5);
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        // Naively, (1e16 + 1.0) - 1e16 == 0.0 in left-to-right f64.
        assert_eq!(exact_of(&[1e16, 1.0, -1e16]), 1.0);
        assert_eq!(exact_of(&[1e300, 1e-300, -1e300]), 1e-300);
    }

    #[test]
    fn order_and_partition_invariant() {
        let values = [
            0.1,
            -7.25,
            1e16,
            3.5e-310,
            -1e16,
            2.0f64.powi(-1074),
            123456789.123,
            -0.3,
            1e-30,
        ];
        let reference = exact_of(&values);
        // Reversed order.
        let rev: Vec<f64> = values.iter().rev().copied().collect();
        assert_eq!(exact_of(&rev).to_bits(), reference.to_bits());
        // Every 2-way partition point, merged.
        for split in 0..=values.len() {
            let mut a = ExactSum::new();
            for &v in &values[..split] {
                a.add(v);
            }
            let mut b = ExactSum::new();
            for &v in &values[split..] {
                b.add(v);
            }
            a.merge(&b);
            assert_eq!(a.value().to_bits(), reference.to_bits(), "split {split}");
        }
    }

    #[test]
    fn subnormals_accumulate_exactly() {
        let tiny = f64::from_bits(1); // 2^-1074
        let mut s = ExactSum::new();
        for _ in 0..3 {
            s.add(tiny);
        }
        assert_eq!(s.value(), f64::from_bits(3));
        s.add(-tiny);
        assert_eq!(s.value(), f64::from_bits(2));
    }

    #[test]
    fn round_to_nearest_even_on_the_guard_bit() {
        let ulp_half = 2.0f64.powi(-53);
        // 1.0 + 2^-53 is an exact tie -> rounds to even (1.0).
        assert_eq!(exact_of(&[1.0, ulp_half]).to_bits(), 1.0f64.to_bits());
        // A sticky bit below the guard breaks the tie upward.
        let up = exact_of(&[1.0, ulp_half, 2.0f64.powi(-100)]);
        assert_eq!(up.to_bits(), (1.0f64 + 2.0 * ulp_half).to_bits());
        // Tie with an odd mantissa rounds up to the even neighbour.
        let three_ulps = 1.0 + 3.0 * 2.0 * ulp_half; // odd mantissa
        let tied = exact_of(&[three_ulps, ulp_half]);
        assert_eq!(tied.to_bits(), (1.0 + 4.0 * 2.0 * ulp_half).to_bits());
    }

    #[test]
    fn overflow_and_specials_follow_ieee() {
        assert_eq!(exact_of(&[f64::MAX, f64::MAX]), f64::INFINITY);
        assert_eq!(exact_of(&[-f64::MAX, -f64::MAX]), f64::NEG_INFINITY);
        assert_eq!(exact_of(&[f64::INFINITY, 1.0]), f64::INFINITY);
        assert_eq!(exact_of(&[f64::NEG_INFINITY, 1.0]), f64::NEG_INFINITY);
        assert!(exact_of(&[f64::INFINITY, f64::NEG_INFINITY]).is_nan());
        assert!(exact_of(&[f64::NAN, 1.0]).is_nan());
        // MAX + MAX - MAX: the exact sum is back in range -> finite.
        assert_eq!(exact_of(&[f64::MAX, f64::MAX, -f64::MAX]), f64::MAX);
    }

    #[test]
    fn many_deferred_adds_trigger_normalization() {
        let mut s = ExactSum::new();
        for i in 0..100_000u32 {
            s.add(if i % 2 == 0 { 1.25e10 } else { -0.25e10 });
        }
        assert_eq!(s.value(), 50_000.0 * 1.25e10 - 50_000.0 * 0.25e10);
    }
}
