//! Pangu — the chunked, replicated blob store of the storage layer.
//!
//! The paper (§4.2) names Pangu as MaxCompute's disk storage module. This
//! analogue stores named blobs split into fixed-size chunks, each chunk
//! replicated onto `replication` distinct simulated datanodes. Nodes can be
//! failed and the store re-replicates from surviving copies — the property
//! that makes "results will be stored in Pangu" a durability statement.

use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Errors surfaced by the blob store.
#[derive(Debug, PartialEq, Eq)]
pub enum PanguError {
    /// Blob name not present.
    NotFound,
    /// A chunk lost all replicas (more failures than replication covers).
    ChunkLost { blob: String, chunk: usize },
    /// Not enough live nodes to satisfy the replication factor.
    InsufficientNodes,
}

impl std::fmt::Display for PanguError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PanguError::NotFound => write!(f, "blob not found"),
            PanguError::ChunkLost { blob, chunk } => {
                write!(f, "chunk {chunk} of blob '{blob}' lost all replicas")
            }
            PanguError::InsufficientNodes => write!(f, "not enough live datanodes"),
        }
    }
}

impl std::error::Error for PanguError {}

#[derive(Debug, Default)]
struct DataNode {
    /// (blob, chunk index) -> chunk bytes.
    chunks: HashMap<(String, usize), Bytes>,
    alive: bool,
}

#[derive(Debug)]
struct BlobMeta {
    n_chunks: usize,
    len: usize,
}

struct Inner {
    nodes: Vec<DataNode>,
    blobs: HashMap<String, BlobMeta>,
    /// (blob, chunk) -> node ids currently holding a replica.
    placement: HashMap<(String, usize), Vec<usize>>,
    rr: usize,
}

/// The replicated chunk store.
pub struct Pangu {
    chunk_size: usize,
    replication: usize,
    inner: Mutex<Inner>,
}

impl Pangu {
    /// Create a cluster of `n_nodes` datanodes.
    pub fn new(n_nodes: usize, chunk_size: usize, replication: usize) -> Self {
        assert!(n_nodes >= replication, "need at least `replication` nodes");
        assert!(chunk_size > 0 && replication > 0);
        Self {
            chunk_size,
            replication,
            inner: Mutex::new(Inner {
                nodes: (0..n_nodes)
                    .map(|_| DataNode {
                        alive: true,
                        ..Default::default()
                    })
                    .collect(),
                blobs: HashMap::new(),
                placement: HashMap::new(),
                rr: 0,
            }),
        }
    }

    /// Store (or overwrite) a named blob.
    pub fn put(&self, name: &str, data: &[u8]) -> Result<(), PanguError> {
        let mut inner = self.inner.lock();
        let live: Vec<usize> = (0..inner.nodes.len())
            .filter(|&i| inner.nodes[i].alive)
            .collect();
        if live.len() < self.replication {
            return Err(PanguError::InsufficientNodes);
        }
        // Remove any previous version.
        remove_blob(&mut inner, name);

        let n_chunks = data.len().div_ceil(self.chunk_size).max(1);
        for c in 0..n_chunks {
            let lo = c * self.chunk_size;
            let hi = ((c + 1) * self.chunk_size).min(data.len());
            let chunk = Bytes::copy_from_slice(&data[lo..hi]);
            let mut holders = Vec::with_capacity(self.replication);
            for r in 0..self.replication {
                // Round-robin placement over live nodes.
                let node = live[(inner.rr + r) % live.len()];
                inner.nodes[node]
                    .chunks
                    .insert((name.to_string(), c), chunk.clone());
                holders.push(node);
            }
            inner.rr = (inner.rr + 1) % live.len().max(1);
            inner.placement.insert((name.to_string(), c), holders);
        }
        inner.blobs.insert(
            name.to_string(),
            BlobMeta {
                n_chunks,
                len: data.len(),
            },
        );
        Ok(())
    }

    /// Read a blob back, reassembling chunks from any live replica.
    pub fn get(&self, name: &str) -> Result<Vec<u8>, PanguError> {
        let inner = self.inner.lock();
        let meta = inner.blobs.get(name).ok_or(PanguError::NotFound)?;
        let mut out = Vec::with_capacity(meta.len);
        for c in 0..meta.n_chunks {
            let holders = inner
                .placement
                .get(&(name.to_string(), c))
                .ok_or(PanguError::NotFound)?;
            let chunk = holders
                .iter()
                .filter(|&&n| inner.nodes[n].alive)
                .find_map(|&n| inner.nodes[n].chunks.get(&(name.to_string(), c)))
                .ok_or_else(|| PanguError::ChunkLost {
                    blob: name.to_string(),
                    chunk: c,
                })?;
            out.extend_from_slice(chunk);
        }
        Ok(out)
    }

    /// Whether a blob exists.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.lock().blobs.contains_key(name)
    }

    /// Fail a datanode (drops its replicas), then re-replicate every
    /// affected chunk onto other live nodes where possible.
    pub fn fail_node(&self, node: usize) {
        let mut inner = self.inner.lock();
        inner.nodes[node].alive = false;
        inner.nodes[node].chunks.clear();
        // Re-replicate: for each placement that referenced the dead node,
        // copy from a surviving replica to a fresh live node.
        let keys: Vec<(String, usize)> = inner
            .placement
            .iter()
            .filter(|(_, holders)| holders.contains(&node))
            .map(|(k, _)| k.clone())
            .collect();
        for key in keys {
            let holders = inner.placement[&key].clone();
            let survivor = holders
                .iter()
                .find(|&&n| n != node && inner.nodes[n].alive)
                .copied();
            let Some(survivor) = survivor else { continue };
            let data = inner.nodes[survivor].chunks.get(&key).cloned();
            let Some(data) = data else { continue };
            let replacement =
                (0..inner.nodes.len()).find(|&n| inner.nodes[n].alive && !holders.contains(&n));
            let mut new_holders: Vec<usize> = holders.into_iter().filter(|&n| n != node).collect();
            if let Some(repl) = replacement {
                inner.nodes[repl].chunks.insert(key.clone(), data);
                new_holders.push(repl);
            }
            inner.placement.insert(key, new_holders);
        }
    }

    /// Restart a failed node (comes back empty).
    pub fn restart_node(&self, node: usize) {
        self.inner.lock().nodes[node].alive = true;
    }
}

fn remove_blob(inner: &mut Inner, name: &str) {
    if let Some(meta) = inner.blobs.remove(name) {
        for c in 0..meta.n_chunks {
            if let Some(holders) = inner.placement.remove(&(name.to_string(), c)) {
                for n in holders {
                    inner.nodes[n].chunks.remove(&(name.to_string(), c));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let p = Pangu::new(4, 8, 2);
        let data: Vec<u8> = (0..100u8).collect();
        p.put("model", &data).unwrap();
        assert_eq!(p.get("model").unwrap(), data);
        assert!(p.contains("model"));
        assert_eq!(p.get("missing").unwrap_err(), PanguError::NotFound);
    }

    #[test]
    fn empty_blob_round_trips() {
        let p = Pangu::new(3, 8, 2);
        p.put("empty", &[]).unwrap();
        assert_eq!(p.get("empty").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn survives_single_node_failure() {
        let p = Pangu::new(4, 8, 2);
        let data: Vec<u8> = (0..64u8).collect();
        p.put("blob", &data).unwrap();
        for node in 0..4 {
            p.fail_node(node);
            assert_eq!(p.get("blob").unwrap(), data, "after failing node {node}");
            p.restart_node(node);
            // Re-put so placements are fresh for the next iteration.
            p.put("blob", &data).unwrap();
        }
    }

    #[test]
    fn re_replication_keeps_data_through_sequential_failures() {
        let p = Pangu::new(5, 4, 2);
        let data: Vec<u8> = (0..32u8).collect();
        p.put("b", &data).unwrap();
        // Fail two nodes one after the other: re-replication after the
        // first must protect against the second.
        p.fail_node(0);
        p.fail_node(1);
        assert_eq!(p.get("b").unwrap(), data);
    }

    #[test]
    fn cascading_failures_down_to_replication_survivors() {
        // 6 nodes, 3-way replication: fail nodes one by one until only
        // `replication` survivors remain. Re-replication after each loss
        // must keep every blob readable the whole way down; one failure
        // past the threshold turns reads into typed errors, not panics.
        let p = Pangu::new(6, 4, 3);
        let blobs: Vec<(String, Vec<u8>)> = (0..5)
            .map(|i| {
                (
                    format!("blob-{i}"),
                    (0..40u8).map(|b| b.wrapping_mul(i + 1)).collect(),
                )
            })
            .collect();
        for (name, data) in &blobs {
            p.put(name, data).unwrap();
        }
        // Cascade: 6 -> 3 live nodes (exactly `replication` survivors).
        for node in 0..3 {
            p.fail_node(node);
            for (name, data) in &blobs {
                assert_eq!(
                    &p.get(name).unwrap(),
                    data,
                    "{name} unreadable after cascading failure of nodes 0..={node}"
                );
            }
        }
        // New writes still work at exactly `replication` live nodes.
        p.put("late", b"still-durable").unwrap();
        assert_eq!(p.get("late").unwrap(), b"still-durable");
        // Below the threshold new writes are rejected, but sequential
        // failure + re-replication degrades reads gracefully: existing
        // blobs ride down to a single surviving replica.
        p.fail_node(3);
        assert_eq!(
            p.put("over", b"x").unwrap_err(),
            PanguError::InsufficientNodes
        );
        p.fail_node(4);
        for (name, data) in &blobs {
            assert_eq!(
                &p.get(name).unwrap(),
                data,
                "{name} must survive on the last replica"
            );
        }
        // The last holder dying is the point of no return: every read is a
        // typed ChunkLost — never a panic.
        p.fail_node(5);
        for (name, _) in &blobs {
            match p.get(name).unwrap_err() {
                PanguError::ChunkLost { blob, .. } => assert_eq!(&blob, name),
                other => panic!("unexpected error for {name}: {other}"),
            }
        }
    }

    #[test]
    fn overwrite_replaces_content() {
        let p = Pangu::new(3, 4, 2);
        p.put("b", b"first").unwrap();
        p.put("b", b"second!").unwrap();
        assert_eq!(p.get("b").unwrap(), b"second!");
    }

    #[test]
    fn insufficient_nodes_is_an_error() {
        let p = Pangu::new(2, 4, 2);
        p.fail_node(0);
        assert_eq!(p.put("b", b"x").unwrap_err(), PanguError::InsufficientNodes);
    }
}
