//! Job instances, subtask splitting and the priority scheduler.
//!
//! Mirrors §4.2's server layer: a submitted job becomes an *instance*
//! registered in OTS as `Running`; the scheduler splits "the task of job
//! instance into multiple subtasks, which are arranged into task pool in
//! priority order"; executor threads wait for Fuxi slots, run subtasks, and
//! the instance flips to `Terminated` when the last subtask finishes.

use crate::fuxi::Fuxi;
use crate::ots::{InstanceStatus, Ots};
use parking_lot::{Condvar, Mutex};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// A unit of work. Subtasks run on executor threads under one Fuxi slot.
pub type Subtask = Box<dyn FnOnce() + Send>;

/// A job to submit: a description, a priority (higher runs first) and its
/// subtasks.
pub struct JobSpec {
    pub description: String,
    pub priority: u8,
    pub subtasks: Vec<Subtask>,
}

struct PoolEntry {
    priority: u8,
    seq: u64,
    task: Subtask,
    /// Shared per-job completion state: (remaining, instance id, notifier).
    job: Arc<JobState>,
}

struct JobState {
    remaining: Mutex<usize>,
    instance: u64,
    done_tx: Sender<u64>,
}

impl PartialEq for PoolEntry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for PoolEntry {}
impl PartialOrd for PoolEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PoolEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first; FIFO within a priority.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct SchedulerState {
    pool: BinaryHeap<PoolEntry>,
    seq: u64,
    shutdown: bool,
}

/// The job scheduler: a task pool drained by executor threads gated on
/// Fuxi slots.
pub struct Scheduler {
    state: Arc<(Mutex<SchedulerState>, Condvar)>,
    ots: Arc<Ots>,
    executors: Vec<std::thread::JoinHandle<()>>,
}

/// Handle to a submitted job.
pub struct JobHandle {
    pub instance_id: u64,
    done_rx: Receiver<u64>,
}

impl JobHandle {
    /// Block until the job's instance terminates.
    pub fn wait(self) {
        let _ = self.done_rx.recv();
    }
}

impl Scheduler {
    /// Start `n_executors` executor threads sharing `fuxi` slots.
    pub fn new(fuxi: Fuxi, ots: Arc<Ots>, n_executors: usize) -> Self {
        let state = Arc::new((
            Mutex::new(SchedulerState {
                pool: BinaryHeap::new(),
                seq: 0,
                shutdown: false,
            }),
            Condvar::new(),
        ));
        let executors = (0..n_executors.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                let fuxi = fuxi.clone();
                let ots = Arc::clone(&ots);
                std::thread::spawn(move || executor_loop(state, fuxi, ots))
            })
            .collect();
        Self {
            state,
            ots,
            executors,
        }
    }

    /// Submit a job: registers an OTS instance, splits into subtasks and
    /// enqueues them by priority. Returns a handle to wait on.
    pub fn submit(&self, owner: &str, spec: JobSpec) -> JobHandle {
        let instance = self.ots.register(owner, &spec.description);
        let (done_tx, done_rx) = channel();
        let n = spec.subtasks.len();
        let job = Arc::new(JobState {
            remaining: Mutex::new(n),
            instance,
            done_tx,
        });
        if n == 0 {
            // Degenerate job: terminates immediately.
            self.ots.set_status(instance, InstanceStatus::Terminated);
            let _ = job.done_tx.send(instance);
            return JobHandle {
                instance_id: instance,
                done_rx,
            };
        }
        {
            let (lock, cv) = &*self.state;
            let mut st = lock.lock();
            for task in spec.subtasks {
                let seq = st.seq;
                st.seq += 1;
                st.pool.push(PoolEntry {
                    priority: spec.priority,
                    seq,
                    task,
                    job: Arc::clone(&job),
                });
            }
            cv.notify_all();
        }
        JobHandle {
            instance_id: instance,
            done_rx,
        }
    }

    /// Submit one job whose subtasks each *produce* a value, wait for the
    /// instance to terminate, and return the values **in subtask order**
    /// (not completion order). This is the coordinator side of scatter/
    /// gather: the distributed SQL engine fans per-segment scans out
    /// through it and merges the partials it gets back.
    ///
    /// # Panics
    /// Panics if a subtask panicked on its executor (its result slot stays
    /// empty).
    pub fn run_collect<T, F>(
        &self,
        owner: &str,
        description: &str,
        priority: u8,
        tasks: Vec<F>,
    ) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = tasks.len();
        let slots: Arc<Mutex<Vec<Option<T>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let subtasks: Vec<Subtask> = tasks
            .into_iter()
            .enumerate()
            .map(|(i, f)| {
                let slots = Arc::clone(&slots);
                Box::new(move || {
                    let v = f();
                    slots.lock()[i] = Some(v);
                }) as Subtask
            })
            .collect();
        self.submit(
            owner,
            JobSpec {
                description: description.to_string(),
                priority,
                subtasks,
            },
        )
        .wait();
        let mut slots = slots.lock();
        slots
            .iter_mut()
            .map(|s| s.take().expect("subtask did not produce a result"))
            .collect()
    }

    /// Stop executors after draining the pool.
    pub fn shutdown(mut self) {
        {
            let (lock, cv) = &*self.state;
            lock.lock().shutdown = true;
            cv.notify_all();
        }
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
    }
}

fn executor_loop(state: Arc<(Mutex<SchedulerState>, Condvar)>, fuxi: Fuxi, ots: Arc<Ots>) {
    loop {
        let entry = {
            let (lock, cv) = &*state;
            let mut st = lock.lock();
            loop {
                if let Some(e) = st.pool.pop() {
                    break e;
                }
                if st.shutdown {
                    return;
                }
                cv.wait(&mut st);
            }
        };
        // "As soon as the resource conditions are satisfied, the subtasks
        // are sent to an executor, which requests Fuxi…"
        let _slot = fuxi.allocate(1);
        (entry.task)();
        let mut remaining = entry.job.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            ots.set_status(entry.job.instance, InstanceStatus::Terminated);
            let _ = entry.job.done_tx.send(entry.job.instance);
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        let (lock, cv) = &*self.state;
        lock.lock().shutdown = true;
        cv.notify_all();
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AtOrd};

    fn setup(slots: usize, executors: usize) -> (Scheduler, Arc<Ots>) {
        let ots = Arc::new(Ots::new());
        let fuxi = Fuxi::new(1, slots);
        (Scheduler::new(fuxi, Arc::clone(&ots), executors), ots)
    }

    #[test]
    fn job_runs_all_subtasks_and_terminates() {
        let (sched, ots) = setup(4, 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let subtasks: Vec<Subtask> = (0..10)
            .map(|_| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    c.fetch_add(1, AtOrd::SeqCst);
                }) as Subtask
            })
            .collect();
        let h = sched.submit(
            "alice",
            JobSpec {
                description: "count".into(),
                priority: 1,
                subtasks,
            },
        );
        let id = h.instance_id;
        h.wait();
        assert_eq!(counter.load(AtOrd::SeqCst), 10);
        assert_eq!(ots.get(id).unwrap().status, InstanceStatus::Terminated);
    }

    #[test]
    fn empty_job_terminates_immediately() {
        let (sched, ots) = setup(1, 1);
        let h = sched.submit(
            "a",
            JobSpec {
                description: "noop".into(),
                priority: 0,
                subtasks: vec![],
            },
        );
        let id = h.instance_id;
        h.wait();
        assert_eq!(ots.get(id).unwrap().status, InstanceStatus::Terminated);
    }

    #[test]
    fn priority_orders_pending_tasks() {
        // Single executor, single slot: occupy it, then enqueue low and
        // high priority jobs and observe execution order.
        let (sched, _ots) = setup(1, 1);
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));

        let g = Arc::clone(&gate);
        let blocker = sched.submit(
            "a",
            JobSpec {
                description: "blocker".into(),
                priority: 9,
                subtasks: vec![Box::new(move || {
                    let (lock, cv) = &*g;
                    let mut open = lock.lock();
                    while !*open {
                        cv.wait(&mut open);
                    }
                })],
            },
        );
        // Give the executor a moment to grab the blocker.
        std::thread::sleep(std::time::Duration::from_millis(30));

        let o1 = Arc::clone(&order);
        let low = sched.submit(
            "a",
            JobSpec {
                description: "low".into(),
                priority: 1,
                subtasks: vec![Box::new(move || o1.lock().push("low"))],
            },
        );
        let o2 = Arc::clone(&order);
        let high = sched.submit(
            "a",
            JobSpec {
                description: "high".into(),
                priority: 5,
                subtasks: vec![Box::new(move || o2.lock().push("high"))],
            },
        );
        // Open the gate.
        {
            let (lock, cv) = &*gate;
            *lock.lock() = true;
            cv.notify_all();
        }
        blocker.wait();
        high.wait();
        low.wait();
        assert_eq!(*order.lock(), vec!["high", "low"]);
    }

    #[test]
    fn run_collect_returns_results_in_subtask_order() {
        let (sched, _ots) = setup(4, 4);
        let tasks: Vec<_> = (0..16u64)
            .map(|i| {
                move || {
                    // Finish out of order on purpose.
                    std::thread::sleep(std::time::Duration::from_millis((16 - i) % 4));
                    i * i
                }
            })
            .collect();
        let results = sched.run_collect("a", "squares", 3, tasks);
        assert_eq!(results, (0..16u64).map(|i| i * i).collect::<Vec<_>>());
        assert!(sched
            .run_collect("a", "empty", 3, Vec::<fn() -> u8>::new())
            .is_empty());
    }

    #[test]
    fn slot_contention_serialises_execution() {
        let (sched, _) = setup(1, 4);
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let subtasks: Vec<Subtask> = (0..8)
            .map(|_| {
                let c = Arc::clone(&concurrent);
                let p = Arc::clone(&peak);
                Box::new(move || {
                    let now = c.fetch_add(1, AtOrd::SeqCst) + 1;
                    p.fetch_max(now, AtOrd::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    c.fetch_sub(1, AtOrd::SeqCst);
                }) as Subtask
            })
            .collect();
        let h = sched.submit(
            "a",
            JobSpec {
                description: "serial".into(),
                priority: 1,
                subtasks,
            },
        );
        h.wait();
        assert_eq!(peak.load(AtOrd::SeqCst), 1, "one slot => no concurrency");
    }
}
