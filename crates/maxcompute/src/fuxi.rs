//! Fuxi — the resource management and scheduling module.
//!
//! The paper (§4.2) describes executors requesting Fuxi to "trigger
//! computing resources in the compute layer", with subtasks waiting until
//! "the resource conditions are satisfied". This analogue models a cluster
//! of machines with a fixed slot count each; allocations are granted FIFO
//! and released when the subtask finishes. The §5.2 observation that "more
//! resources requested, more waiting time may be needed for allocation" is
//! directly measurable here.

use parking_lot::{Condvar, Mutex};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A slot allocation; slots return to the pool on drop (RAII).
pub struct Allocation {
    slots: usize,
    pool: Arc<Pool>,
}

/// Point-in-time snapshot of scheduling pressure — the paper's §5.2 "more
/// resources requested, more waiting time may be needed for allocation"
/// made measurable. Counters are cumulative since cluster boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FuxiStats {
    pub total_slots: usize,
    pub free_slots: usize,
    /// Peak concurrent slot usage.
    pub peak_used: usize,
    /// Allocations granted.
    pub allocations: u64,
    /// Allocation requests that had to wait for slots to free up.
    pub waits: u64,
    /// Cumulative time spent waiting for slots, in microseconds.
    pub wait_micros: u64,
}

struct PoolState {
    free_slots: usize,
    /// Peak concurrent usage (diagnostics).
    peak_used: usize,
    total_slots: usize,
    allocations: u64,
    waits: u64,
    wait_micros: u64,
}

impl PoolState {
    fn grant(&mut self, slots: usize) {
        self.free_slots -= slots;
        let used = self.total_slots - self.free_slots;
        self.peak_used = self.peak_used.max(used);
        self.allocations += 1;
    }
}

struct Pool {
    state: Mutex<PoolState>,
    cv: Condvar,
}

/// The Fuxi resource manager.
#[derive(Clone)]
pub struct Fuxi {
    pool: Arc<Pool>,
}

impl Fuxi {
    /// A cluster of `machines` machines with `slots_per_machine` each.
    pub fn new(machines: usize, slots_per_machine: usize) -> Self {
        let total = machines * slots_per_machine;
        assert!(total > 0, "cluster needs at least one slot");
        Self {
            pool: Arc::new(Pool {
                state: Mutex::new(PoolState {
                    free_slots: total,
                    peak_used: 0,
                    total_slots: total,
                    allocations: 0,
                    waits: 0,
                    wait_micros: 0,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Total slots in the cluster.
    pub fn total_slots(&self) -> usize {
        self.pool.state.lock().total_slots
    }

    /// Currently free slots.
    pub fn free_slots(&self) -> usize {
        self.pool.state.lock().free_slots
    }

    /// Peak concurrent slot usage so far.
    pub fn peak_used(&self) -> usize {
        self.pool.state.lock().peak_used
    }

    /// Scheduling-pressure snapshot.
    pub fn stats(&self) -> FuxiStats {
        let state = self.pool.state.lock();
        FuxiStats {
            total_slots: state.total_slots,
            free_slots: state.free_slots,
            peak_used: state.peak_used,
            allocations: state.allocations,
            waits: state.waits,
            wait_micros: state.wait_micros,
        }
    }

    /// Block until `slots` are available, then take them.
    ///
    /// # Panics
    /// Panics when the request exceeds cluster capacity (it would never be
    /// satisfiable).
    pub fn allocate(&self, slots: usize) -> Allocation {
        let mut state = self.pool.state.lock();
        assert!(
            slots <= state.total_slots,
            "requested {slots} slots but the cluster has {}",
            state.total_slots
        );
        if state.free_slots < slots {
            state.waits += 1;
            let started = Instant::now();
            while state.free_slots < slots {
                self.pool.cv.wait(&mut state);
            }
            state.wait_micros += started.elapsed().as_micros() as u64;
        }
        state.grant(slots);
        Allocation {
            slots,
            pool: Arc::clone(&self.pool),
        }
    }

    /// Try to take `slots` without blocking.
    pub fn try_allocate(&self, slots: usize) -> Option<Allocation> {
        let mut state = self.pool.state.lock();
        if slots > state.total_slots || state.free_slots < slots {
            return None;
        }
        state.grant(slots);
        Some(Allocation {
            slots,
            pool: Arc::clone(&self.pool),
        })
    }

    /// Block until `slots` are available or the timeout elapses.
    pub fn allocate_timeout(&self, slots: usize, timeout: Duration) -> Option<Allocation> {
        let mut state = self.pool.state.lock();
        if slots > state.total_slots {
            return None;
        }
        if state.free_slots < slots {
            state.waits += 1;
            let started = Instant::now();
            let deadline = started + timeout;
            let waited = loop {
                if self.pool.cv.wait_until(&mut state, deadline).timed_out() {
                    break false;
                }
                if state.free_slots >= slots {
                    break true;
                }
            };
            state.wait_micros += started.elapsed().as_micros() as u64;
            if !waited {
                return None;
            }
        }
        state.grant(slots);
        Some(Allocation {
            slots,
            pool: Arc::clone(&self.pool),
        })
    }
}

impl Allocation {
    /// How many slots this allocation holds.
    pub fn slots(&self) -> usize {
        self.slots
    }
}

impl Drop for Allocation {
    fn drop(&mut self) {
        let mut state = self.pool.state.lock();
        state.free_slots += self.slots;
        self.pool.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release() {
        let fuxi = Fuxi::new(2, 4);
        assert_eq!(fuxi.total_slots(), 8);
        let a = fuxi.allocate(5);
        assert_eq!(fuxi.free_slots(), 3);
        drop(a);
        assert_eq!(fuxi.free_slots(), 8);
        assert_eq!(fuxi.peak_used(), 5);
    }

    #[test]
    fn try_allocate_fails_when_full() {
        let fuxi = Fuxi::new(1, 2);
        let _a = fuxi.try_allocate(2).unwrap();
        assert!(fuxi.try_allocate(1).is_none());
    }

    #[test]
    fn blocking_allocation_waits_for_release() {
        let fuxi = Fuxi::new(1, 2);
        let a = fuxi.allocate(2);
        let fuxi2 = fuxi.clone();
        let handle = std::thread::spawn(move || {
            let _b = fuxi2.allocate(1); // blocks until `a` drops
            true
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!handle.is_finished(), "allocation should still be waiting");
        drop(a);
        assert!(handle.join().unwrap());
    }

    #[test]
    fn timeout_expires_when_slots_never_free() {
        let fuxi = Fuxi::new(1, 1);
        let _a = fuxi.allocate(1);
        let got = fuxi.allocate_timeout(1, Duration::from_millis(30));
        assert!(got.is_none());
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn oversized_request_panics() {
        let fuxi = Fuxi::new(1, 1);
        let _ = fuxi.allocate(2);
    }

    #[test]
    fn stats_count_allocations_and_waits() {
        let fuxi = Fuxi::new(1, 2);
        let a = fuxi.allocate(2); // no wait
        let fuxi2 = fuxi.clone();
        let handle = std::thread::spawn(move || {
            let _b = fuxi2.allocate(1); // must wait for `a`
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(a);
        handle.join().unwrap();
        let s = fuxi.stats();
        assert_eq!(s.total_slots, 2);
        assert_eq!(s.free_slots, 2);
        assert_eq!(s.peak_used, 2);
        assert_eq!(s.allocations, 2);
        assert_eq!(s.waits, 1);
        assert!(
            s.wait_micros > 0,
            "blocked allocation must record wait time"
        );
        // A failed timeout still counts as a wait but not an allocation.
        let _c = fuxi.allocate(2);
        assert!(fuxi
            .allocate_timeout(1, Duration::from_millis(10))
            .is_none());
        let s = fuxi.stats();
        assert_eq!(s.allocations, 3);
        assert_eq!(s.waits, 2);
    }
}
