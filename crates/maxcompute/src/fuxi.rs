//! Fuxi — the resource management and scheduling module.
//!
//! The paper (§4.2) describes executors requesting Fuxi to "trigger
//! computing resources in the compute layer", with subtasks waiting until
//! "the resource conditions are satisfied". This analogue models a cluster
//! of machines with a fixed slot count each; allocations are granted FIFO
//! and released when the subtask finishes. The §5.2 observation that "more
//! resources requested, more waiting time may be needed for allocation" is
//! directly measurable here.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// A slot allocation; slots return to the pool on drop (RAII).
pub struct Allocation {
    slots: usize,
    pool: Arc<Pool>,
}

struct PoolState {
    free_slots: usize,
    /// Peak concurrent usage (diagnostics).
    peak_used: usize,
    total_slots: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    cv: Condvar,
}

/// The Fuxi resource manager.
#[derive(Clone)]
pub struct Fuxi {
    pool: Arc<Pool>,
}

impl Fuxi {
    /// A cluster of `machines` machines with `slots_per_machine` each.
    pub fn new(machines: usize, slots_per_machine: usize) -> Self {
        let total = machines * slots_per_machine;
        assert!(total > 0, "cluster needs at least one slot");
        Self {
            pool: Arc::new(Pool {
                state: Mutex::new(PoolState {
                    free_slots: total,
                    peak_used: 0,
                    total_slots: total,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Total slots in the cluster.
    pub fn total_slots(&self) -> usize {
        self.pool.state.lock().total_slots
    }

    /// Currently free slots.
    pub fn free_slots(&self) -> usize {
        self.pool.state.lock().free_slots
    }

    /// Peak concurrent slot usage so far.
    pub fn peak_used(&self) -> usize {
        self.pool.state.lock().peak_used
    }

    /// Block until `slots` are available, then take them.
    ///
    /// # Panics
    /// Panics when the request exceeds cluster capacity (it would never be
    /// satisfiable).
    pub fn allocate(&self, slots: usize) -> Allocation {
        let mut state = self.pool.state.lock();
        assert!(
            slots <= state.total_slots,
            "requested {slots} slots but the cluster has {}",
            state.total_slots
        );
        while state.free_slots < slots {
            self.pool.cv.wait(&mut state);
        }
        state.free_slots -= slots;
        let used = state.total_slots - state.free_slots;
        state.peak_used = state.peak_used.max(used);
        Allocation {
            slots,
            pool: Arc::clone(&self.pool),
        }
    }

    /// Try to take `slots` without blocking.
    pub fn try_allocate(&self, slots: usize) -> Option<Allocation> {
        let mut state = self.pool.state.lock();
        if slots > state.total_slots || state.free_slots < slots {
            return None;
        }
        state.free_slots -= slots;
        let used = state.total_slots - state.free_slots;
        state.peak_used = state.peak_used.max(used);
        Some(Allocation {
            slots,
            pool: Arc::clone(&self.pool),
        })
    }

    /// Block until `slots` are available or the timeout elapses.
    pub fn allocate_timeout(&self, slots: usize, timeout: Duration) -> Option<Allocation> {
        let mut state = self.pool.state.lock();
        if slots > state.total_slots {
            return None;
        }
        let deadline = std::time::Instant::now() + timeout;
        while state.free_slots < slots {
            if self.pool.cv.wait_until(&mut state, deadline).timed_out() {
                return None;
            }
        }
        state.free_slots -= slots;
        let used = state.total_slots - state.free_slots;
        state.peak_used = state.peak_used.max(used);
        Some(Allocation {
            slots,
            pool: Arc::clone(&self.pool),
        })
    }
}

impl Allocation {
    /// How many slots this allocation holds.
    pub fn slots(&self) -> usize {
        self.slots
    }
}

impl Drop for Allocation {
    fn drop(&mut self) {
        let mut state = self.pool.state.lock();
        state.free_slots += self.slots;
        self.pool.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release() {
        let fuxi = Fuxi::new(2, 4);
        assert_eq!(fuxi.total_slots(), 8);
        let a = fuxi.allocate(5);
        assert_eq!(fuxi.free_slots(), 3);
        drop(a);
        assert_eq!(fuxi.free_slots(), 8);
        assert_eq!(fuxi.peak_used(), 5);
    }

    #[test]
    fn try_allocate_fails_when_full() {
        let fuxi = Fuxi::new(1, 2);
        let _a = fuxi.try_allocate(2).unwrap();
        assert!(fuxi.try_allocate(1).is_none());
    }

    #[test]
    fn blocking_allocation_waits_for_release() {
        let fuxi = Fuxi::new(1, 2);
        let a = fuxi.allocate(2);
        let fuxi2 = fuxi.clone();
        let handle = std::thread::spawn(move || {
            let _b = fuxi2.allocate(1); // blocks until `a` drops
            true
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!handle.is_finished(), "allocation should still be waiting");
        drop(a);
        assert!(handle.join().unwrap());
    }

    #[test]
    fn timeout_expires_when_slots_never_free() {
        let fuxi = Fuxi::new(1, 1);
        let _a = fuxi.allocate(1);
        let got = fuxi.allocate_timeout(1, Duration::from_millis(30));
        assert!(got.is_none());
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn oversized_request_panics() {
        let fuxi = Fuxi::new(1, 1);
        let _ = fuxi.allocate(2);
    }
}
