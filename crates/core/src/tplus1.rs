//! The "T+1" driver: retrain offline daily, serve the next day (§5.1).
//!
//! "A model will be trained and deployed in an offline manner on a daily
//! basis and will be used for prediction for the next day on a real-time
//! basis."

use crate::error::TitAntError;
use crate::offline::{OfflinePipeline, PipelineConfig};
use crate::online::{OnlineDeployment, ServingReport};
use titant_datagen::{DatasetSlice, World};

/// One day's outcome.
#[derive(Debug, Clone)]
pub struct DailyResult {
    /// Paper-style name of the test day ("April 10" + k).
    pub day_name: String,
    /// The slice index.
    pub slice_index: usize,
    /// Serving outcome for that day.
    pub report: ServingReport,
    /// Model version deployed (the test day).
    pub model_version: u64,
}

/// Rolls the offline/online cycle across consecutive dataset slices.
pub struct TPlusOneDriver {
    pipeline: OfflinePipeline,
}

impl TPlusOneDriver {
    /// Create a driver with the given pipeline configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Self {
            pipeline: OfflinePipeline::new(config),
        }
    }

    /// Run the daily cycle for each slice: train on the window, deploy the
    /// fresh model, replay the test day, roll forward. Fails if a freshly
    /// trained model cannot be deployed (layout/width mismatch).
    pub fn run(
        &self,
        world: &World,
        slices: &[DatasetSlice],
    ) -> Result<Vec<DailyResult>, TitAntError> {
        slices
            .iter()
            .map(|slice| {
                let artifacts = self.pipeline.run(world, slice)?;
                let version = artifacts.version;
                let deployment = OnlineDeployment::new(world, slice, artifacts)?;
                let report = deployment.replay_test_day(world, slice);
                Ok(DailyResult {
                    day_name: slice.test_day_name(),
                    slice_index: slice.index,
                    report,
                    model_version: version,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titant_datagen::WorldConfig;

    #[test]
    fn driver_rolls_across_days_with_fresh_models() {
        let world = World::generate(WorldConfig::tiny(21));
        let start = world.config().feature_start_day;
        let n_days = world.config().n_days;
        // Two custom mini-slices inside the tiny world.
        let slices: Vec<DatasetSlice> = (0..2)
            .map(|k| DatasetSlice {
                index: k,
                graph_days: k as i64..start + k as i64,
                train_days: start + k as i64..n_days - 2 + k as i64,
                test_day: n_days - 2 + k as i64,
            })
            .collect();
        let results = TPlusOneDriver::new(PipelineConfig::quick())
            .run(&world, &slices)
            .unwrap();
        assert_eq!(results.len(), 2);
        // Fresh model per day, version = test day.
        assert_eq!(results[0].model_version + 1, results[1].model_version);
        assert!(results.iter().all(|r| r.report.transactions > 0));
    }
}
