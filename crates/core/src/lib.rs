//! # titant-core — the TitAnt system
//!
//! The paper's primary contribution assembled from the substrate crates
//! (Figure 3): offline periodical training on MaxCompute + KunPeng, feature
//! and embedding upload to Ali-HBase, and online real-time prediction at
//! the Model Server.
//!
//! * [`layout`] — the canonical 52-feature schema shared by training and
//!   serving, with the payer/receiver/context slot split the MS needs.
//! * [`assemble`] — dataset assembly for a rolling [`titant_datagen::DatasetSlice`]:
//!   basic features ⊕ DeepWalk/Structure2Vec node embeddings for both
//!   transfer parties, labels as-of the T+1 cutoff.
//! * [`offline`] — the offline pipeline: transaction logs into MaxCompute,
//!   network construction by MapReduce, NRL + classifier training, model
//!   file + per-user feature upload.
//! * [`online`] — deployment: a Model Server over the uploaded features,
//!   fronted by the simulated Alipay server, replaying live traffic.
//! * [`tplus1`] — the "T+1" driver: train on day T, serve day T+1, roll.
//!
//! ## Quickstart
//!
//! ```no_run
//! use titant_core::prelude::*;
//!
//! # fn main() -> Result<(), titant_core::TitAntError> {
//! let world = World::generate(WorldConfig::tiny(7));
//! let slice = DatasetSlice::paper(0);
//! let pipeline = OfflinePipeline::new(PipelineConfig::default());
//! let artifacts = pipeline.run(&world, &slice)?;
//! let deployment = OnlineDeployment::new(&world, &slice, artifacts)?;
//! let report = deployment.replay_test_day(&world, &slice);
//! println!("caught {} frauds", report.true_alerts);
//! # Ok(())
//! # }
//! ```

pub mod assemble;
pub mod error;
pub mod layout;
pub mod offline;
pub mod online;
pub mod tplus1;

pub use error::TitAntError;
pub use offline::{OfflineArtifacts, OfflinePipeline, PipelineConfig};
pub use online::{OnlineDeployment, ServingReport, StageBreakdown};
pub use tplus1::{DailyResult, TPlusOneDriver};

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use crate::assemble::{self, EmbeddingChoice};
    pub use crate::error::TitAntError;
    pub use crate::layout;
    pub use crate::offline::{OfflineArtifacts, OfflinePipeline, PipelineConfig};
    pub use crate::online::{OnlineDeployment, ServingReport, StageBreakdown};
    pub use crate::tplus1::{DailyResult, TPlusOneDriver};
    pub use titant_alihbase::{FaultPlan, FaultPlanConfig, UnavailableWindow};
    pub use titant_datagen::{DatasetSlice, World, WorldConfig};
    pub use titant_models::{Classifier, Dataset, FlatForest, PredictEngine, TraversalCounts};
    pub use titant_modelserver::{
        HedgePolicy, ResilienceSnapshot, RetryPolicy, RowCacheConfig, RowCacheStats, SloConfig,
    };
}
