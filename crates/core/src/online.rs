//! Online deployment: the Model Server behind the simulated Alipay front
//! end, replaying live traffic (the right half of Figure 3 / Figure 5).

use crate::error::TitAntError;
use crate::layout;
use crate::offline::OfflineArtifacts;
use std::time::Duration;
use titant_datagen::{DatasetSlice, World};
use titant_modelserver::{
    AlipayServer, ModelServer, RowCacheConfig, ScoreRequest, ServeError, SloConfig, Stage,
    TransferOutcome,
};

/// p50/p99 of one serving stage over the replayed interval.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageBreakdown {
    pub p50: Duration,
    pub p99: Duration,
}

/// Outcome of replaying a test day through the serving stack.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Transactions replayed.
    pub transactions: usize,
    /// Alerts that hit actual (eventually reported) fraud.
    pub true_alerts: usize,
    /// Alerts on legitimate transactions.
    pub false_alerts: usize,
    /// Frauds the system let through.
    pub missed_frauds: usize,
    /// Serving F1 at the deployed operating point.
    pub f1: f64,
    /// Median serving latency.
    pub p50: Duration,
    /// Tail serving latency — the paper's "mere milliseconds" claim.
    pub p99: Duration,
    /// Feature-store fetch stage.
    pub fetch: StageBreakdown,
    /// Vector-assembly stage.
    pub assemble: StageBreakdown,
    /// Model-predict stage.
    pub predict: StageBreakdown,
    /// Requests the MS rejected as malformed during this replay.
    pub errors: usize,
    /// Transactions scored in degraded (context-only) mode.
    pub degraded: usize,
    /// Transactions whose deadline budget ran out (counted apart from
    /// `errors`: the request was well-formed, the SLO resolved it).
    pub deadline_exceeded: usize,
    /// Transient-fault retries the serving path performed.
    pub retried: usize,
    /// Hedged reads issued against replicas.
    pub hedged: usize,
    /// Replica failovers performed.
    pub failovers: usize,
    /// Requests shed at the serving queue (always 0 in this synchronous
    /// replay; populated by pool-driven harnesses).
    pub shed: usize,
    /// Ingest write retries performed against write faults during the
    /// replayed interval (0 unless a write-fault hook is installed).
    pub write_retried: usize,
    /// WAL append failures the feature table absorbed during the interval.
    pub wal_append_failures: u64,
    /// WAL fsync failures (injected or real) absorbed during the interval.
    pub wal_sync_failures: u64,
    /// Seeded power-loss events recovered in place during the interval.
    pub power_loss_recoveries: u64,
    /// Crash artifacts (orphan temp runs, aborted child dirs) swept by
    /// store opens during the interval.
    pub orphans_cleaned: u64,
}

/// A live deployment built from offline artifacts.
pub struct OnlineDeployment {
    alipay: AlipayServer,
    embedding_dim: usize,
}

impl OnlineDeployment {
    /// Stand up the Model Server over the uploaded feature table and front
    /// it with the Alipay server. Fails when the shipped model file does
    /// not match the serving layout.
    pub fn new(
        world: &World,
        slice: &DatasetSlice,
        artifacts: OfflineArtifacts,
    ) -> Result<Self, TitAntError> {
        Self::with_slo(world, slice, artifacts, SloConfig::default())
    }

    /// [`Self::new`] with explicit serving SLOs (deadline budget, retry
    /// policy, hedged reads) for chaos-replay harnesses. No row cache:
    /// chaos replays assume every read consults the store.
    pub fn with_slo(
        world: &World,
        slice: &DatasetSlice,
        artifacts: OfflineArtifacts,
        slo: SloConfig,
    ) -> Result<Self, TitAntError> {
        Self::with_options(world, slice, artifacts, slo, None)
    }

    /// [`Self::with_slo`] plus an optional decoded-row cache in front of
    /// the feature fetch (cleared automatically on every model deploy).
    pub fn with_options(
        _world: &World,
        _slice: &DatasetSlice,
        artifacts: OfflineArtifacts,
        slo: SloConfig,
        cache: Option<RowCacheConfig>,
    ) -> Result<Self, TitAntError> {
        let embedding_dim =
            (artifacts.model_file.n_features - titant_datagen::N_BASIC_FEATURES) / 2;
        let ms = ModelServer::with_options(
            artifacts.feature_table,
            layout::serving_layout(embedding_dim),
            artifacts.model_file,
            slo,
            cache,
        )?;
        Ok(Self {
            alipay: AlipayServer::new(ms),
            embedding_dim,
        })
    }

    /// The embedded model server (hot swaps, latency inspection).
    pub fn model_server(&self) -> &ModelServer {
        self.alipay.model_server()
    }

    /// Embedding dimensionality the deployment serves with.
    pub fn embedding_dim(&self) -> usize {
        self.embedding_dim
    }

    /// Replay every test-day transaction through the serving path and
    /// compare verdicts against the eventually-reported labels.
    pub fn replay_test_day(&self, world: &World, slice: &DatasetSlice) -> ServingReport {
        let range = world.record_range(slice.test_day..slice.test_day + 1);
        // Snapshot the recorder so the report covers *this* replay only —
        // cumulative stats would let earlier traffic pollute the quantiles.
        let latency_before = self.model_server().latency().snapshot();
        let stats_before = self.alipay.stats();
        let resilience_before = self.model_server().resilience();
        let write_before = self.model_server().write_stats();
        let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
        let mut total = 0usize;
        let mut errors = 0usize;
        let mut deadline_exceeded = 0usize;
        for i in range {
            let rec = &world.records()[i];
            let context = match world.features_of(i) {
                Some(row) => layout::split_row(row).2,
                None => vec![0.0; layout::CONTEXT_SLOTS.len()],
            };
            let outcome = self.alipay.transfer(ScoreRequest {
                tx_id: rec.tx_id.0,
                transferor: rec.transferor.0,
                transferee: rec.transferee.0,
                context,
            });
            let is_fraud = world.label_as_of(i, i64::MAX) > 0.5;
            match (outcome, is_fraud) {
                (Ok(TransferOutcome::Interrupted), true) => tp += 1,
                (Ok(TransferOutcome::Interrupted), false) => fp += 1,
                (Ok(TransferOutcome::Completed), true) => fn_ += 1,
                (Ok(TransferOutcome::Completed), false) => {}
                // A deadline miss is a counted SLO outcome, not an error;
                // a malformed record must not take the replay down either.
                // Both are counted and the day continues.
                (Err(ServeError::DeadlineExceeded { .. }), _) => deadline_exceeded += 1,
                (Err(_), _) => errors += 1,
            }
            total += 1;
        }
        let precision = if tp + fp > 0 {
            tp as f64 / (tp + fp) as f64
        } else {
            0.0
        };
        let recall = if tp + fn_ > 0 {
            tp as f64 / (tp + fn_) as f64
        } else {
            0.0
        };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        let delta = self
            .model_server()
            .latency()
            .snapshot()
            .since(&latency_before);
        let breakdown = |stage: Stage| {
            let s = delta.stage(stage);
            StageBreakdown {
                p50: s.quantile(0.5).unwrap_or_default(),
                p99: s.quantile(0.99).unwrap_or_default(),
            }
        };
        let total_stage = delta.stage(Stage::Total);
        let resilience = self.model_server().resilience();
        let write_delta = self.model_server().write_stats().since(&write_before);
        ServingReport {
            transactions: total,
            true_alerts: tp,
            false_alerts: fp,
            missed_frauds: fn_,
            f1,
            p50: total_stage.quantile(0.5).unwrap_or_default(),
            p99: total_stage.quantile(0.99).unwrap_or_default(),
            fetch: breakdown(Stage::Fetch),
            assemble: breakdown(Stage::Assemble),
            predict: breakdown(Stage::Predict),
            errors,
            degraded: self.alipay.stats().degraded - stats_before.degraded,
            deadline_exceeded,
            retried: (resilience.retried - resilience_before.retried) as usize,
            hedged: (resilience.hedged - resilience_before.hedged) as usize,
            failovers: (resilience.failovers - resilience_before.failovers) as usize,
            shed: (resilience.shed - resilience_before.shed) as usize,
            write_retried: (resilience.write_retried - resilience_before.write_retried) as usize,
            wal_append_failures: write_delta.wal_append_failures,
            wal_sync_failures: write_delta.wal_sync_failures,
            power_loss_recoveries: write_delta.power_loss_recoveries,
            orphans_cleaned: write_delta.orphans_cleaned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{OfflinePipeline, PipelineConfig};
    use titant_datagen::WorldConfig;

    fn deploy() -> (World, DatasetSlice, OnlineDeployment) {
        let world = World::generate(WorldConfig::tiny(9));
        let start = world.config().feature_start_day;
        let slice = DatasetSlice {
            index: 0,
            graph_days: 0..start,
            train_days: start..world.config().n_days - 1,
            test_day: world.config().n_days - 1,
        };
        let artifacts = OfflinePipeline::new(PipelineConfig::quick())
            .run(&world, &slice)
            .unwrap();
        let deployment = OnlineDeployment::new(&world, &slice, artifacts).unwrap();
        (world, slice, deployment)
    }

    #[test]
    fn replay_covers_the_whole_test_day_within_milliseconds() {
        let (world, slice, deployment) = deploy();
        let report = deployment.replay_test_day(&world, &slice);
        let expected = world.record_range(slice.test_day..slice.test_day + 1).len();
        assert_eq!(report.transactions, expected);
        // The paper's serving bound: tens of milliseconds at most.
        assert!(
            report.p99 < Duration::from_millis(50),
            "p99 {:?} exceeds the paper's bound",
            report.p99
        );
        assert!(report.p50 <= report.p99);
        assert_eq!(report.errors, 0, "replayed records are well-formed");
        // The per-stage breakdown is populated and each stage sits below
        // the end-to-end tail.
        for stage in [report.fetch, report.assemble, report.predict] {
            assert!(stage.p50 <= stage.p99);
            assert!(stage.p99 <= report.p99.mul_f64(1.1), "{report:?}");
        }
    }

    #[test]
    fn replay_report_covers_only_its_own_interval() {
        let (world, slice, deployment) = deploy();
        // Pollute the recorder with fake ten-second requests before the
        // replay; a cumulative report would drag p99 over the bound.
        for _ in 0..1000 {
            deployment
                .model_server()
                .latency()
                .record(Duration::from_secs(10));
        }
        let report = deployment.replay_test_day(&world, &slice);
        assert!(
            report.p99 < Duration::from_millis(50),
            "replay report leaked earlier traffic: p99 {:?}",
            report.p99
        );
        // A second replay is likewise unaffected by the first.
        let second = deployment.replay_test_day(&world, &slice);
        assert_eq!(second.transactions, report.transactions);
        assert!(second.p99 < Duration::from_millis(50));
    }

    #[test]
    fn serving_catches_a_nontrivial_share_of_fraud() {
        let (world, slice, deployment) = deploy();
        let report = deployment.replay_test_day(&world, &slice);
        let frauds = report.true_alerts + report.missed_frauds;
        assert!(frauds > 0, "test day should contain fraud");
        // The tiny world is noisy; demand better than nothing rather than a
        // specific F1.
        assert!(
            report.true_alerts > 0,
            "deployment caught nothing ({report:?})"
        );
    }

    #[test]
    fn deployment_reports_embedding_dim() {
        let (_, _, deployment) = deploy();
        assert_eq!(deployment.embedding_dim(), 8);
    }
}
