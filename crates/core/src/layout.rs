//! The canonical feature layout shared by training and serving.
//!
//! The 52 basic features (see `titant_datagen::features`) split into three
//! families by *where the value lives at serving time*:
//!
//! * **payer slots** — the transferor's profile and outgoing aggregates;
//!   stored per user in Ali-HBase, refreshed by each offline run;
//! * **receiver slots** — the transferee's profile and incoming
//!   aggregates; also per user in Ali-HBase;
//! * **context slots** — per-transaction values (amount, hour, device,
//!   pair history) that the Alipay server computes at request time.
//!
//! Node embeddings (when the model uses them) append after the basic block:
//! transferor's `dim` values, then the transferee's. Streaming **velocity**
//! slots (windowed counts/amounts/distinct counterparties maintained by
//! `titant-stream`) append after the embeddings, again transferor first.

/// Indices of payer-side features in the 52-column basic block.
pub const PAYER_SLOTS: [usize; 18] = [
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, // profile
    20, 21, 22, 23, 24, 25, 26, 27, // outgoing aggregates
];

/// Indices of receiver-side features.
pub const RECEIVER_SLOTS: [usize; 19] = [
    10, 11, 12, 13, 14, 15, 16, 17, 18, 19, // profile
    28, 29, 30, 31, 32, 33, 34, 35, 36, // incoming aggregates
];

/// Indices of per-transaction context features.
pub const CONTEXT_SLOTS: [usize; 15] = [37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51];

/// Build the model-server layout for a given embedding dimensionality
/// (0 = a model trained on basic features only).
pub fn serving_layout(embedding_dim: usize) -> titant_modelserver::server::FeatureLayout {
    serving_layout_with_velocity(embedding_dim, 0)
}

/// [`serving_layout`] plus a per-party streaming velocity block of
/// `velocity_width` slots (0 = no streaming features — bit-identical to
/// the plain layout).
pub fn serving_layout_with_velocity(
    embedding_dim: usize,
    velocity_width: usize,
) -> titant_modelserver::server::FeatureLayout {
    titant_modelserver::server::FeatureLayout {
        n_basic: titant_datagen::N_BASIC_FEATURES,
        payer_slots: PAYER_SLOTS.to_vec(),
        receiver_slots: RECEIVER_SLOTS.to_vec(),
        context_slots: CONTEXT_SLOTS.to_vec(),
        embedding_dim,
        velocity_width,
    }
}

/// Split one 52-wide basic feature row into (payer, receiver, context)
/// sub-vectors, in slot order.
pub fn split_row(row: &[f32]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    assert_eq!(row.len(), titant_datagen::N_BASIC_FEATURES);
    (
        PAYER_SLOTS.iter().map(|&i| row[i]).collect(),
        RECEIVER_SLOTS.iter().map(|&i| row[i]).collect(),
        CONTEXT_SLOTS.iter().map(|&i| row[i]).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use titant_datagen::N_BASIC_FEATURES;

    #[test]
    fn slots_partition_the_basic_block() {
        let mut seen = [false; N_BASIC_FEATURES];
        for &i in PAYER_SLOTS
            .iter()
            .chain(RECEIVER_SLOTS.iter())
            .chain(CONTEXT_SLOTS.iter())
        {
            assert!(!seen[i], "slot {i} assigned twice");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "every basic column must be owned");
    }

    #[test]
    fn slot_names_match_their_family() {
        let names = titant_datagen::feature_names();
        for &i in &PAYER_SLOTS {
            assert!(names[i].starts_with("p_"), "{} is not payer-side", names[i]);
        }
        for &i in &RECEIVER_SLOTS {
            assert!(
                names[i].starts_with("r_"),
                "{} is not receiver-side",
                names[i]
            );
        }
    }

    #[test]
    fn split_row_round_trips_through_the_layout() {
        let row: Vec<f32> = (0..N_BASIC_FEATURES).map(|i| i as f32).collect();
        let (p, r, c) = split_row(&row);
        assert_eq!(p.len() + r.len() + c.len(), N_BASIC_FEATURES);
        // Reassemble via the serving layout and compare.
        let layout = serving_layout(0);
        let mut rebuilt = vec![0f32; N_BASIC_FEATURES];
        for (slot, v) in layout.payer_slots.iter().zip(&p) {
            rebuilt[*slot] = *v;
        }
        for (slot, v) in layout.receiver_slots.iter().zip(&r) {
            rebuilt[*slot] = *v;
        }
        for (slot, v) in layout.context_slots.iter().zip(&c) {
            rebuilt[*slot] = *v;
        }
        assert_eq!(rebuilt, row);
    }

    #[test]
    fn serving_layout_width_includes_embeddings() {
        assert_eq!(serving_layout(0).width(), N_BASIC_FEATURES);
        assert_eq!(serving_layout(32).width(), N_BASIC_FEATURES + 64);
    }

    #[test]
    fn velocity_block_widens_the_layout_and_zero_matches_plain() {
        assert_eq!(
            serving_layout_with_velocity(0, 9).width(),
            N_BASIC_FEATURES + 18
        );
        assert_eq!(
            serving_layout_with_velocity(32, 9).width(),
            N_BASIC_FEATURES + 64 + 18
        );
        let plain = serving_layout(8);
        let off = serving_layout_with_velocity(8, 0);
        assert_eq!(plain.width(), off.width());
        assert_eq!(plain.velocity_width, 0);
    }
}
