//! Pipeline-level errors.

use std::fmt;

/// Errors the TitAnt pipeline can surface to its caller.
#[derive(Debug)]
pub enum TitAntError {
    /// The dataset slice does not fit inside the world's simulated days.
    SliceOutOfRange { test_day: i64, n_days: i64 },
    /// The offline batch layer failed.
    MaxCompute(String),
    /// The feature store failed.
    Storage(std::io::Error),
    /// A model file failed to parse.
    ModelFile(String),
    /// The serving path rejected a request or a deployment.
    Serving(titant_modelserver::ServeError),
}

impl fmt::Display for TitAntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TitAntError::SliceOutOfRange { test_day, n_days } => write!(
                f,
                "dataset slice tests day {test_day} but the world has only {n_days} days"
            ),
            TitAntError::MaxCompute(m) => write!(f, "maxcompute: {m}"),
            TitAntError::Storage(e) => write!(f, "feature store: {e}"),
            TitAntError::ModelFile(m) => write!(f, "model file: {m}"),
            TitAntError::Serving(e) => write!(f, "serving: {e}"),
        }
    }
}

impl std::error::Error for TitAntError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TitAntError::Storage(e) => Some(e),
            TitAntError::Serving(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TitAntError {
    fn from(e: std::io::Error) -> Self {
        TitAntError::Storage(e)
    }
}

impl From<titant_modelserver::ServeError> for TitAntError {
    fn from(e: titant_modelserver::ServeError) -> Self {
        TitAntError::Serving(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = TitAntError::SliceOutOfRange {
            test_day: 104,
            n_days: 40,
        };
        assert!(e.to_string().contains("104"));
        let e = TitAntError::from(std::io::Error::other("disk"));
        assert!(e.to_string().contains("disk"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
