//! Dataset assembly for a rolling dataset slice: basic features ⊕ node
//! embeddings for both transfer parties, labelled as-of the T+1 cutoff.

use titant_datagen::{DatasetSlice, World};
use titant_models::Dataset;
use titant_nrl::EmbeddingMatrix;
use titant_txgraph::{TxGraph, UserId};

/// Which embeddings a configuration appends to the basic features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbeddingChoice {
    /// Basic features only.
    None,
    /// Basic + DeepWalk.
    DeepWalk,
    /// Basic + Structure2Vec.
    Structure2Vec,
    /// Basic + both.
    Both,
}

/// Unlabelled dataset of embedding columns (`2 * dim` wide: transferor then
/// transferee) for the given records. Users outside the network window get
/// zero vectors — the production cold-start.
pub fn embedding_columns(
    world: &World,
    record_idx: &[usize],
    graph: &TxGraph,
    emb: &EmbeddingMatrix,
    tag: &str,
) -> Dataset {
    let d = emb.dim();
    let mut names = Vec::with_capacity(2 * d);
    for side in ["p", "r"] {
        for k in 0..d {
            names.push(format!("{tag}_{side}{k}"));
        }
    }
    let mut data = Dataset::new(2 * d).with_feature_names(names);
    let mut row = vec![0f32; 2 * d];
    for &i in record_idx {
        let rec = &world.records()[i];
        fill(&mut row[..d], graph, emb, rec.transferor);
        fill(&mut row[d..], graph, emb, rec.transferee);
        data.push_unlabeled_row(&row);
    }
    data
}

#[inline]
fn fill(out: &mut [f32], graph: &TxGraph, emb: &EmbeddingMatrix, user: UserId) {
    match graph.node_of(user) {
        None => out.iter_mut().for_each(|v| *v = 0.0),
        Some(node) => out.copy_from_slice(emb.row(node)),
    }
}

/// Assemble labelled train/test datasets for a slice.
///
/// * `embeddings` — `(tag, matrix)` pairs to append, in order (the Table 1
///   "+DW+S2V" configuration passes both).
/// * Train labels use reports received by the slice's label cutoff; test
///   labels are evaluation-time.
pub fn slice_datasets(
    world: &World,
    slice: &DatasetSlice,
    graph: &TxGraph,
    embeddings: &[(&str, &EmbeddingMatrix)],
) -> (Dataset, Dataset) {
    let (mut train, train_idx) =
        world.basic_dataset(slice.train_days.clone(), slice.label_cutoff());
    let (mut test, test_idx) = world.basic_dataset(slice.test_day..slice.test_day + 1, i64::MAX);
    for (tag, emb) in embeddings {
        train = train.hconcat(&embedding_columns(world, &train_idx, graph, emb, tag));
        test = test.hconcat(&embedding_columns(world, &test_idx, graph, emb, tag));
    }
    (train, test)
}

/// Chronological fit/validation split: the oldest `val_fraction` of rows
/// become the validation set (their labels have matured; the newest rows
/// are systematically under-labelled because fraud reports lag).
pub fn fit_val_split(train: &Dataset, val_fraction: f64) -> (Dataset, Dataset) {
    assert!((0.0..1.0).contains(&val_fraction), "fraction in [0,1)");
    let n = train.n_rows();
    let val_end = (n as f64 * val_fraction) as usize;
    let val_rows: Vec<usize> = (0..val_end).collect();
    let fit_rows: Vec<usize> = (val_end..n).collect();
    (train.subset(&fit_rows), train.subset(&val_rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use titant_datagen::WorldConfig;
    use titant_nrl::{DeepWalk, DeepWalkConfig, Word2VecConfig};
    use titant_txgraph::WalkConfig;

    fn tiny_world() -> World {
        World::generate(WorldConfig::tiny(3))
    }

    fn tiny_slice(world: &World) -> DatasetSlice {
        let start = world.config().feature_start_day;
        DatasetSlice {
            index: 0,
            graph_days: 0..start,
            train_days: start..world.config().n_days - 1,
            test_day: world.config().n_days - 1,
        }
    }

    #[test]
    fn datasets_have_expected_widths() {
        let world = tiny_world();
        let slice = tiny_slice(&world);
        let graph = world.build_graph(slice.graph_days.clone());
        let emb = DeepWalk::new(DeepWalkConfig {
            walk: WalkConfig {
                walk_length: 6,
                walks_per_node: 3,
                ..Default::default()
            },
            word2vec: Word2VecConfig {
                dim: 4,
                epochs: 1,
                ..Default::default()
            },
        })
        .embed(&graph);
        let (train, test) = slice_datasets(&world, &slice, &graph, &[("dw", &emb)]);
        assert_eq!(train.n_cols(), titant_datagen::N_BASIC_FEATURES + 8);
        assert_eq!(test.n_cols(), train.n_cols());
        assert!(train.n_rows() > test.n_rows());
        assert!(train.is_labeled() && test.is_labeled());
    }

    #[test]
    fn fit_val_split_is_chronological() {
        let world = tiny_world();
        let slice = tiny_slice(&world);
        let graph = world.build_graph(slice.graph_days.clone());
        let (train, _) = slice_datasets(&world, &slice, &graph, &[]);
        let (fit, val) = fit_val_split(&train, 0.25);
        assert_eq!(fit.n_rows() + val.n_rows(), train.n_rows());
        // Oldest rows go to validation.
        assert_eq!(val.row(0), train.row(0));
        assert_eq!(fit.row(0), train.row(val.n_rows()));
    }

    #[test]
    fn unknown_users_embed_as_zeros() {
        let world = tiny_world();
        let slice = tiny_slice(&world);
        // Empty graph: nobody is known.
        let graph = world.build_graph(0..0);
        let emb = titant_nrl::EmbeddingMatrix::zeros(0, 4);
        let (_train, test_idx) = world.basic_dataset(slice.test_day..slice.test_day + 1, i64::MAX);
        let _ = _train;
        let cols = embedding_columns(&world, &test_idx, &graph, &emb, "dw");
        for i in 0..cols.n_rows() {
            assert!(cols.row(i).iter().all(|&v| v == 0.0));
        }
    }
}
