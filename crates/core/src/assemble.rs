//! Dataset assembly for a rolling dataset slice: basic features ⊕ node
//! embeddings for both transfer parties, labelled as-of the T+1 cutoff.

use titant_datagen::{DatasetSlice, World};
use titant_models::Dataset;
use titant_nrl::EmbeddingMatrix;
use titant_parallel::Pool;
use titant_txgraph::{TxGraph, UserId};

/// Below this many rows the per-chunk spawn cost outweighs the copy work.
const PAR_ASSEMBLE_MIN_ROWS: usize = 4 * 1024;

/// Which embeddings a configuration appends to the basic features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbeddingChoice {
    /// Basic features only.
    None,
    /// Basic + DeepWalk.
    DeepWalk,
    /// Basic + Structure2Vec.
    Structure2Vec,
    /// Basic + both.
    Both,
}

/// Unlabelled dataset of embedding columns (`2 * dim` wide: transferor then
/// transferee) for the given records. Users outside the network window get
/// zero vectors — the production cold-start.
pub fn embedding_columns(
    world: &World,
    record_idx: &[usize],
    graph: &TxGraph,
    emb: &EmbeddingMatrix,
    tag: &str,
) -> Dataset {
    embedding_columns_with_pool(world, record_idx, graph, emb, tag, &Pool::serial())
}

/// [`embedding_columns`] with row materialization sharded across the pool's
/// workers. Each worker fills a disjoint row-aligned span of one
/// preallocated value buffer, so the output is byte-identical to the serial
/// path for any thread count.
pub fn embedding_columns_with_pool(
    world: &World,
    record_idx: &[usize],
    graph: &TxGraph,
    emb: &EmbeddingMatrix,
    tag: &str,
    pool: &Pool,
) -> Dataset {
    let d = emb.dim();
    let mut names = Vec::with_capacity(2 * d);
    for side in ["p", "r"] {
        for k in 0..d {
            names.push(format!("{tag}_{side}{k}"));
        }
    }
    let width = 2 * d;
    if width == 0 {
        let mut data = Dataset::new(0);
        for _ in record_idx {
            data.push_unlabeled_row(&[]);
        }
        return data;
    }
    let mut values = vec![0f32; record_idx.len() * width];
    let fill_span = |first_row: usize, span: &mut [f32]| {
        for (offset, chunk) in span.chunks_exact_mut(width).enumerate() {
            let rec = &world.records()[record_idx[first_row + offset]];
            fill(&mut chunk[..d], graph, emb, rec.transferor);
            fill(&mut chunk[d..], graph, emb, rec.transferee);
        }
    };
    if pool.threads() > 1 && record_idx.len() >= PAR_ASSEMBLE_MIN_ROWS {
        pool.for_chunks_mut(&mut values, width, |first_row, span| {
            fill_span(first_row, span)
        });
    } else {
        fill_span(0, &mut values);
    }
    Dataset::from_parts(width, values, Vec::new()).with_feature_names(names)
}

#[inline]
fn fill(out: &mut [f32], graph: &TxGraph, emb: &EmbeddingMatrix, user: UserId) {
    match graph.node_of(user) {
        None => out.iter_mut().for_each(|v| *v = 0.0),
        Some(node) => out.copy_from_slice(emb.row(node)),
    }
}

/// Assemble labelled train/test datasets for a slice.
///
/// * `embeddings` — `(tag, matrix)` pairs to append, in order (the Table 1
///   "+DW+S2V" configuration passes both).
/// * Train labels use reports received by the slice's label cutoff; test
///   labels are evaluation-time.
pub fn slice_datasets(
    world: &World,
    slice: &DatasetSlice,
    graph: &TxGraph,
    embeddings: &[(&str, &EmbeddingMatrix)],
) -> (Dataset, Dataset) {
    slice_datasets_with_pool(world, slice, graph, embeddings, &Pool::serial())
}

/// [`slice_datasets`] with embedding-row materialization sharded across the
/// pool's workers (same output for any thread count).
pub fn slice_datasets_with_pool(
    world: &World,
    slice: &DatasetSlice,
    graph: &TxGraph,
    embeddings: &[(&str, &EmbeddingMatrix)],
    pool: &Pool,
) -> (Dataset, Dataset) {
    let (mut train, train_idx) =
        world.basic_dataset(slice.train_days.clone(), slice.label_cutoff());
    let (mut test, test_idx) = world.basic_dataset(slice.test_day..slice.test_day + 1, i64::MAX);
    for (tag, emb) in embeddings {
        train = train.hconcat(&embedding_columns_with_pool(
            world, &train_idx, graph, emb, tag, pool,
        ));
        test = test.hconcat(&embedding_columns_with_pool(
            world, &test_idx, graph, emb, tag, pool,
        ));
    }
    (train, test)
}

/// Chronological fit/validation split: the oldest `val_fraction` of rows
/// become the validation set (their labels have matured; the newest rows
/// are systematically under-labelled because fraud reports lag).
pub fn fit_val_split(train: &Dataset, val_fraction: f64) -> (Dataset, Dataset) {
    assert!((0.0..1.0).contains(&val_fraction), "fraction in [0,1)");
    let n = train.n_rows();
    let val_end = (n as f64 * val_fraction) as usize;
    let val_rows: Vec<usize> = (0..val_end).collect();
    let fit_rows: Vec<usize> = (val_end..n).collect();
    (train.subset(&fit_rows), train.subset(&val_rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use titant_datagen::WorldConfig;
    use titant_nrl::{DeepWalk, DeepWalkConfig, Word2VecConfig};
    use titant_txgraph::WalkConfig;

    fn tiny_world() -> World {
        World::generate(WorldConfig::tiny(3))
    }

    fn tiny_slice(world: &World) -> DatasetSlice {
        let start = world.config().feature_start_day;
        DatasetSlice {
            index: 0,
            graph_days: 0..start,
            train_days: start..world.config().n_days - 1,
            test_day: world.config().n_days - 1,
        }
    }

    #[test]
    fn datasets_have_expected_widths() {
        let world = tiny_world();
        let slice = tiny_slice(&world);
        let graph = world.build_graph(slice.graph_days.clone());
        let emb = DeepWalk::new(DeepWalkConfig {
            walk: WalkConfig {
                walk_length: 6,
                walks_per_node: 3,
                ..Default::default()
            },
            word2vec: Word2VecConfig {
                dim: 4,
                epochs: 1,
                ..Default::default()
            },
        })
        .embed(&graph);
        let (train, test) = slice_datasets(&world, &slice, &graph, &[("dw", &emb)]);
        assert_eq!(train.n_cols(), titant_datagen::N_BASIC_FEATURES + 8);
        assert_eq!(test.n_cols(), train.n_cols());
        assert!(train.n_rows() > test.n_rows());
        assert!(train.is_labeled() && test.is_labeled());
    }

    #[test]
    fn fit_val_split_is_chronological() {
        let world = tiny_world();
        let slice = tiny_slice(&world);
        let graph = world.build_graph(slice.graph_days.clone());
        let (train, _) = slice_datasets(&world, &slice, &graph, &[]);
        let (fit, val) = fit_val_split(&train, 0.25);
        assert_eq!(fit.n_rows() + val.n_rows(), train.n_rows());
        // Oldest rows go to validation.
        assert_eq!(val.row(0), train.row(0));
        assert_eq!(fit.row(0), train.row(val.n_rows()));
    }

    /// The pooled materialization path must be byte-identical to the serial
    /// one. The repeated index list pushes the row count past the parallel
    /// threshold so the sharded path actually runs.
    #[test]
    fn pooled_embedding_columns_match_serial() {
        let world = tiny_world();
        let slice = tiny_slice(&world);
        let graph = world.build_graph(slice.graph_days.clone());
        let emb = DeepWalk::new(DeepWalkConfig {
            walk: WalkConfig {
                walk_length: 6,
                walks_per_node: 3,
                ..Default::default()
            },
            word2vec: Word2VecConfig {
                dim: 4,
                epochs: 1,
                ..Default::default()
            },
        })
        .embed(&graph);
        let (_, test_idx) = world.basic_dataset(slice.test_day..slice.test_day + 1, i64::MAX);
        let idx: Vec<usize> = test_idx
            .iter()
            .cycle()
            .take(super::PAR_ASSEMBLE_MIN_ROWS + 77)
            .copied()
            .collect();
        let serial = embedding_columns(&world, &idx, &graph, &emb, "dw");
        for threads in [2usize, 3, 8] {
            let pooled =
                embedding_columns_with_pool(&world, &idx, &graph, &emb, "dw", &Pool::new(threads));
            assert_eq!(pooled.n_rows(), serial.n_rows());
            for i in 0..serial.n_rows() {
                assert_eq!(pooled.row(i), serial.row(i), "row {i}, threads {threads}");
            }
        }
    }

    #[test]
    fn unknown_users_embed_as_zeros() {
        let world = tiny_world();
        let slice = tiny_slice(&world);
        // Empty graph: nobody is known.
        let graph = world.build_graph(0..0);
        let emb = titant_nrl::EmbeddingMatrix::zeros(0, 4);
        let (_train, test_idx) = world.basic_dataset(slice.test_day..slice.test_day + 1, i64::MAX);
        let _ = _train;
        let cols = embedding_columns(&world, &test_idx, &graph, &emb, "dw");
        for i in 0..cols.n_rows() {
            assert!(cols.row(i).iter().all(|&v| v == 0.0));
        }
    }
}
