//! The offline periodical-training pipeline (the left half of Figure 3).
//!
//! One run reproduces what TitAnt does every day:
//!
//! 1. transaction logs land in **MaxCompute**; a MapReduce job aggregates
//!    them into weighted transfer edges (the paper's network construction);
//! 2. the transaction network is built and **DeepWalk** learns user node
//!    embeddings (KunPeng's distributed trainer at cluster scale; the
//!    shared-memory trainer here);
//! 3. the classifier (**GBDT** by the paper's final choice) trains on basic
//!    features ⊕ embeddings, and the alert operating point is tuned on the
//!    mature-labelled validation slice;
//! 4. per-user serving features and embeddings are uploaded to
//!    **Ali-HBase** under the new version, and a [`ModelFile`] is emitted
//!    for the Model Server.

use crate::assemble::{self, fit_val_split};
use crate::error::TitAntError;
use crate::layout;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use titant_alihbase::{RegionedTable, StoreConfig};
use titant_datagen::{DatasetSlice, World};
use titant_eval as eval;
use titant_maxcompute::{Account, ColumnType, MaxCompute, Schema, Table};
use titant_models::{Classifier, GbdtConfig};
use titant_modelserver::{FeatureCodec, ModelFile, ServableModel, UserFeatures};
use titant_nrl::{DeepWalk, DeepWalkConfig, EmbeddingMatrix, Word2VecConfig};
use titant_parallel::Pool;
use titant_txgraph::{TxGraph, TxGraphBuilder, UserId, WalkConfig};

/// Offline-pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Node-embedding dimensionality (paper: 32; 0 disables embeddings).
    pub embedding_dim: usize,
    /// DeepWalk walks per node (paper: 100).
    pub walks_per_node: usize,
    /// Walk length (paper: 50).
    pub walk_length: usize,
    /// Worker threads for every parallel stage (walks, SGNS, MapReduce,
    /// GBDT, assembly, upload). `0` auto-detects via
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Classifier configuration (paper: 400 trees, depth 3, subsample 0.4).
    pub gbdt: GbdtConfig,
    /// Fraction of the training window (oldest rows) used to tune the alert
    /// operating point.
    pub val_fraction: f64,
    /// Route log ingestion and edge aggregation through the MaxCompute
    /// batch layer (slower, full-fidelity) or build the graph directly.
    pub use_batch_layer: bool,
    /// Read replicas per serving region in the uploaded feature table
    /// (1 = no replication). Replicas enable the online path's failover
    /// and hedged reads.
    pub serving_replicas: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            embedding_dim: 32,
            walks_per_node: 20,
            walk_length: 50,
            threads: 0,
            gbdt: GbdtConfig::default(),
            val_fraction: 0.25,
            use_batch_layer: true,
            serving_replicas: 1,
        }
    }
}

impl PipelineConfig {
    /// A fast configuration for tests and the quickstart example.
    pub fn quick() -> Self {
        Self {
            embedding_dim: 8,
            walks_per_node: 5,
            walk_length: 10,
            threads: 2,
            gbdt: GbdtConfig {
                n_trees: 60,
                subsample: 0.8,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// Wall-clock time spent in each offline stage, recorded by every
/// [`OfflinePipeline::run`]. The offline-throughput bench reports these
/// per thread count; production would export them as training-job metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Network construction (MaxCompute MR or direct build).
    pub graph: Duration,
    /// DeepWalk walks + SGNS training.
    pub embed: Duration,
    /// Dataset assembly (basic ⊕ embedding columns, fit/val split).
    pub assemble: Duration,
    /// GBDT fit, including validation scoring and threshold tuning.
    pub fit: Duration,
    /// Per-user feature upload to Ali-HBase.
    pub upload: Duration,
}

impl StageTimings {
    /// Sum of all stage durations.
    pub fn total(&self) -> Duration {
        self.graph + self.embed + self.assemble + self.fit + self.upload
    }
}

/// Everything one offline run produces.
pub struct OfflineArtifacts {
    /// The transaction network of the 90-day window.
    pub graph: TxGraph,
    /// DeepWalk user node embeddings (empty matrix when disabled).
    pub embeddings: EmbeddingMatrix,
    /// The deployable model.
    pub model_file: ModelFile,
    /// The populated feature store.
    pub feature_table: Arc<RegionedTable>,
    /// Upload version (the test day, i.e. "T+1").
    pub version: u64,
    /// Training-time diagnostics.
    pub train_rows: usize,
    /// Per-stage wall-clock timings for this run.
    pub timings: StageTimings,
}

/// The offline pipeline driver.
pub struct OfflinePipeline {
    config: PipelineConfig,
}

impl OfflinePipeline {
    /// Create a pipeline.
    pub fn new(config: PipelineConfig) -> Self {
        Self { config }
    }

    /// Run one offline training cycle for `slice`.
    ///
    /// Fallible: every stage that touches the batch layer or the feature
    /// store propagates its error instead of panicking, so the T+1 driver
    /// (and anything else that retrains daily) can skip a bad day and keep
    /// serving yesterday's model.
    pub fn run(
        &self,
        world: &World,
        slice: &DatasetSlice,
    ) -> Result<OfflineArtifacts, TitAntError> {
        if slice.test_day >= world.config().n_days {
            return Err(TitAntError::SliceOutOfRange {
                test_day: slice.test_day,
                n_days: world.config().n_days,
            });
        }

        // One resolved thread count + one pool drives every stage.
        let threads = titant_parallel::resolve_threads(self.config.threads);
        let pool = Pool::new(threads);
        let mut timings = StageTimings::default();

        // 1. Network construction: through MaxCompute MR or directly.
        let t0 = Instant::now();
        let graph = if self.config.use_batch_layer {
            self.build_graph_via_maxcompute(world, slice, threads)?
        } else {
            world.build_graph(slice.graph_days.clone())
        };
        timings.graph = t0.elapsed();

        // 2. User node embeddings.
        let t0 = Instant::now();
        let embeddings = if self.config.embedding_dim == 0 {
            EmbeddingMatrix::zeros(graph.node_count(), 1)
        } else {
            DeepWalk::new(DeepWalkConfig {
                walk: WalkConfig {
                    walk_length: self.config.walk_length,
                    walks_per_node: self.config.walks_per_node,
                    strategy: titant_txgraph::WalkStrategy::Weighted,
                    threads,
                    ..Default::default()
                },
                word2vec: Word2VecConfig {
                    dim: self.config.embedding_dim,
                    threads,
                    ..Default::default()
                },
            })
            .embed(&graph)
        };
        timings.embed = t0.elapsed();

        // 3. Train the classifier and tune the alert operating point.
        let t0 = Instant::now();
        let emb_pairs: Vec<(&str, &EmbeddingMatrix)> = if self.config.embedding_dim > 0 {
            vec![("dw", &embeddings)]
        } else {
            Vec::new()
        };
        let (train, _test) =
            assemble::slice_datasets_with_pool(world, slice, &graph, &emb_pairs, &pool);
        let (fit, val) = fit_val_split(&train, self.config.val_fraction);
        timings.assemble = t0.elapsed();

        let t0 = Instant::now();
        let mut gbdt_config = self.config.gbdt.clone();
        if gbdt_config.threads == 0 {
            gbdt_config.threads = threads;
        }
        // Persist the user-configured thread count, not the resolved one:
        // the shipped artifact must not vary with the training machine.
        let model = gbdt_config.fit(&fit).with_threads(self.config.gbdt.threads);
        let val_scores = model.predict_batch(&val);
        let (rate, _f1) = eval::best_f1_rate(&val_scores, val.labels());
        let alert_threshold = score_at_rate(&val_scores, rate);
        timings.fit = t0.elapsed();

        // 4. Upload per-user serving features + the model file.
        let t0 = Instant::now();
        let version = slice.test_day as u64;
        let feature_table =
            Arc::new(self.upload_features(world, slice, &graph, &embeddings, version, &pool)?);
        timings.upload = t0.elapsed();

        let model_file = ModelFile {
            version,
            alert_threshold,
            n_features: train.n_cols(),
            model: ServableModel::Gbdt(model),
        };

        Ok(OfflineArtifacts {
            graph,
            embeddings,
            model_file,
            feature_table,
            version,
            train_rows: train.n_rows(),
            timings,
        })
    }

    /// Ingest window records into a MaxCompute table and aggregate them to
    /// weighted edges with a distributed SQL GROUP BY (the coordinator
    /// fans the scan over `threads` Fuxi-slot segments and merges the
    /// per-segment counts), then build the CSR graph.
    ///
    /// This used to be a hand-coded MapReduce job; the SQL plan computes
    /// the same `((from, to), count)` aggregation, and `GROUP BY` emits
    /// groups in `BTreeMap` key order — identical to the MapReduce
    /// engine's sorted-key reduce order — so the edge table (and the
    /// built graph) is byte-for-byte what the old job produced.
    fn build_graph_via_maxcompute(
        &self,
        world: &World,
        slice: &DatasetSlice,
        threads: usize,
    ) -> Result<TxGraph, TitAntError> {
        let mc = MaxCompute::new(2, threads, 3);
        mc.create_account(&Account::new("titant", "offline"));
        let session = mc
            .login("titant", "offline")
            .map_err(|e| TitAntError::MaxCompute(e.to_string()))?;

        let mut logs = Table::new(Schema::new(vec![
            ("transferor", ColumnType::Int),
            ("transferee", ColumnType::Int),
        ]));
        for r in world.records_in(slice.graph_days.clone()) {
            if !r.is_self_transfer() {
                logs.push_row(vec![
                    (r.transferor.0 as i64).into(),
                    (r.transferee.0 as i64).into(),
                ]);
            }
        }
        session.create_table("transaction_logs", logs);

        let edges = session
            .sql_distributed(
                "SELECT transferor, transferee, COUNT(*) FROM transaction_logs \
                 GROUP BY transferor, transferee",
                threads.max(1),
            )
            .map_err(|e| TitAntError::MaxCompute(e.to_string()))?;

        let mut builder = TxGraphBuilder::new();
        for i in 0..edges.n_rows() {
            builder.add_edge(
                UserId(edges.cell(i, 0).as_i64().unwrap() as u64),
                UserId(edges.cell(i, 1).as_i64().unwrap() as u64),
                edges.cell(i, 2).as_i64().unwrap() as f32,
            );
        }
        Ok(builder.build())
    }

    /// Per-user feature snapshot: the last observed values in the training
    /// window (production T+1 serves yesterday's snapshot), plus the node
    /// embedding for users inside the network window.
    ///
    /// The upload is sharded across the pool's workers: the table is
    /// pre-split at the same quantile boundaries the worker shards use, so
    /// each worker streams its contiguous id range into its own region
    /// without contending on region locks. Table contents are independent
    /// of the thread count — only the physical sharding varies.
    fn upload_features(
        &self,
        world: &World,
        slice: &DatasetSlice,
        graph: &TxGraph,
        embeddings: &EmbeddingMatrix,
        version: u64,
        pool: &Pool,
    ) -> Result<RegionedTable, TitAntError> {
        let dim = if self.config.embedding_dim > 0 {
            embeddings.dim()
        } else {
            0
        };
        let codec = FeatureCodec {
            embedding_dim: dim,
            payer_width: layout::PAYER_SLOTS.len(),
            receiver_width: layout::RECEIVER_SLOTS.len(),
            // The offline stage never writes velocity cells: those belong
            // to the streaming tier (titant-stream) and merge over this
            // upload at read time.
            velocity_width: 0,
        };

        // Latest snapshot per user over the train window. Serial: insertion
        // order is last-write-wins and must follow record order.
        let mut payer_snap: HashMap<u64, Vec<f32>> = HashMap::new();
        let mut recv_snap: HashMap<u64, Vec<f32>> = HashMap::new();
        for i in world.record_range(slice.train_days.clone()) {
            let Some(row) = world.features_of(i) else {
                continue;
            };
            let (p, r, _c) = layout::split_row(row);
            let rec = &world.records()[i];
            payer_snap.insert(rec.transferor.0, p);
            recv_snap.insert(rec.transferee.0, r);
        }

        let mut user_set: std::collections::HashSet<u64> = payer_snap.keys().copied().collect();
        user_set.extend(recv_snap.keys().copied());
        for &user in graph.users() {
            user_set.insert(user.0);
        }
        let mut users: Vec<u64> = user_set.into_iter().collect();
        users.sort_unstable();

        let store_config = StoreConfig {
            replicas: self.config.serving_replicas.max(1),
            ..Default::default()
        };
        let table = if pool.threads() > 1 && !users.is_empty() {
            RegionedTable::with_user_splits(&users, pool.threads(), store_config)?
        } else {
            RegionedTable::single(store_config)?
        };

        // Whole rows are encoded and landed through `put_rows` in multi-user
        // batches: one region-lock acquisition and one all-or-nothing WAL
        // frame per batch instead of one of each per cell. Batch boundaries
        // only affect physical framing, never table contents, so the
        // thread-count-independence of the upload is preserved.
        const USERS_PER_BATCH: usize = 64;
        let encode_user = |user: u64| {
            let embedding = match (dim, graph.node_of(UserId(user))) {
                (0, _) | (_, None) => vec![0.0; dim],
                (_, Some(node)) => embeddings.row(node).to_vec(),
            };
            let features = UserFeatures {
                payer_side: payer_snap
                    .get(&user)
                    .cloned()
                    .unwrap_or_else(|| vec![0.0; layout::PAYER_SLOTS.len()]),
                receiver_side: recv_snap
                    .get(&user)
                    .cloned()
                    .unwrap_or_else(|| vec![0.0; layout::RECEIVER_SLOTS.len()]),
                embedding,
                velocity: Vec::new(),
            };
            codec.encode_user(user, &features, version)
        };
        pool.map_ranges(users.len(), |_, range| -> std::io::Result<()> {
            for chunk in users[range].chunks(USERS_PER_BATCH) {
                let mut cells = Vec::new();
                for &user in chunk {
                    cells.extend(encode_user(user));
                }
                table.put_rows(cells)?;
            }
            Ok(())
        })
        .into_iter()
        .collect::<std::io::Result<()>>()?;
        table.flush()?;
        Ok(table)
    }
}

/// Compute mature training labels with a distributed SQL label-join.
///
/// Production TitAnt joins the transaction log against the case/report
/// table in MaxCompute to label the training window; here the same join
/// runs through the SQL engine: `train_txns` (one row per training
/// transaction) inner-joins `fraud_reports` (one row per fraudulent
/// transaction with the day its victim report landed) on transaction id,
/// keeping only reports mature by the slice's label cutoff. Unreported
/// fraud carries `report_day == i64::MAX` and is filtered by the same
/// predicate — exactly the [`World::label_as_of`] rule.
///
/// Returns one label per record of `slice.train_days`, in record order.
/// The join fans out over `segments` Fuxi subtasks; the result is
/// byte-identical for any segment count.
pub fn labels_via_sql(
    world: &World,
    slice: &DatasetSlice,
    segments: usize,
) -> Result<Vec<f32>, TitAntError> {
    let mc = MaxCompute::new(2, segments.max(1), 3);
    mc.create_account(&Account::new("titant", "labels"));
    let session = mc
        .login("titant", "labels")
        .map_err(|e| TitAntError::MaxCompute(e.to_string()))?;

    let range = world.record_range(slice.train_days.clone());

    let mut txns = Table::new(Schema::new(vec![("txn", ColumnType::Int)]));
    for i in range.clone() {
        txns.push_row(vec![(i as i64).into()]);
    }
    session.create_table("train_txns", txns);

    let mut reports = Table::new(Schema::new(vec![
        ("txn", ColumnType::Int),
        ("report_day", ColumnType::Int),
    ]));
    for i in range.clone() {
        if world.is_fraud(i) {
            reports.push_row(vec![(i as i64).into(), world.report_day(i).into()]);
        }
    }
    session.create_table("fraud_reports", reports);

    let matured = session
        .sql_distributed(
            &format!(
                "SELECT txn FROM train_txns JOIN fraud_reports \
                 ON train_txns.txn = fraud_reports.txn \
                 WHERE report_day <= {}",
                slice.label_cutoff()
            ),
            segments.max(1),
        )
        .map_err(|e| TitAntError::MaxCompute(e.to_string()))?;

    let mut labels = vec![0.0f32; range.len()];
    for r in 0..matured.n_rows() {
        let txn = matured.cell(r, 0).as_i64().unwrap() as usize;
        labels[txn - range.start] = 1.0;
    }
    Ok(labels)
}

/// Score threshold achieving the given alert rate on validation scores.
fn score_at_rate(scores: &[f32], rate: f64) -> f32 {
    if scores.is_empty() || rate <= 0.0 {
        return f32::INFINITY;
    }
    let k = ((scores.len() as f64 * rate).round() as usize).clamp(1, scores.len());
    let mut sorted = scores.to_vec();
    sorted.sort_unstable_by(|a, b| b.total_cmp(a));
    sorted[k - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use titant_datagen::WorldConfig;

    fn tiny_setup() -> (World, DatasetSlice) {
        let world = World::generate(WorldConfig::tiny(5));
        let start = world.config().feature_start_day;
        let slice = DatasetSlice {
            index: 0,
            graph_days: 0..start,
            train_days: start..world.config().n_days - 1,
            test_day: world.config().n_days - 1,
        };
        (world, slice)
    }

    #[test]
    fn pipeline_produces_complete_artifacts() {
        let (world, slice) = tiny_setup();
        let artifacts = OfflinePipeline::new(PipelineConfig::quick())
            .run(&world, &slice)
            .unwrap();
        assert!(artifacts.graph.node_count() > 50);
        assert!(artifacts.timings.total() > Duration::ZERO);
        assert_eq!(artifacts.embeddings.dim(), 8);
        assert_eq!(
            artifacts.model_file.n_features,
            titant_datagen::N_BASIC_FEATURES + 16
        );
        assert!(artifacts.model_file.alert_threshold.is_finite());
        assert!(artifacts.train_rows > 100);
        // Feature table holds at least the graph users.
        let codec = FeatureCodec {
            embedding_dim: 8,
            payer_width: layout::PAYER_SLOTS.len(),
            receiver_width: layout::RECEIVER_SLOTS.len(),
            velocity_width: 0,
        };
        let some_user = artifacts.graph.users()[0];
        assert!(codec
            .get_user(&artifacts.feature_table, some_user.0, u64::MAX)
            .unwrap()
            .is_some());
    }

    #[test]
    fn batch_layer_and_direct_graphs_agree() {
        let (world, slice) = tiny_setup();
        let via_mc = OfflinePipeline::new(PipelineConfig {
            use_batch_layer: true,
            ..PipelineConfig::quick()
        });
        let direct = world.build_graph(slice.graph_days.clone());
        let mc_graph = via_mc
            .build_graph_via_maxcompute(&world, &slice, 2)
            .unwrap();
        assert_eq!(mc_graph.node_count(), direct.node_count());
        assert_eq!(mc_graph.edge_count(), direct.edge_count());
    }

    /// The SQL GROUP BY that replaced the hand-coded MapReduce job must
    /// reproduce its output table cell-for-cell: same `(from, to, count)`
    /// triples in the same sorted-key order, for any segment count.
    #[test]
    fn sql_edge_aggregation_matches_the_old_mapreduce_job() {
        use titant_maxcompute::Value;
        let (world, slice) = tiny_setup();
        let mc = MaxCompute::new(2, 4, 3);
        mc.create_account(&Account::new("titant", "offline"));
        let session = mc.login("titant", "offline").unwrap();

        let mut logs = Table::new(Schema::new(vec![
            ("transferor", ColumnType::Int),
            ("transferee", ColumnType::Int),
        ]));
        for r in world.records_in(slice.graph_days.clone()) {
            if !r.is_self_transfer() {
                logs.push_row(vec![
                    (r.transferor.0 as i64).into(),
                    (r.transferee.0 as i64).into(),
                ]);
            }
        }
        session.create_table("transaction_logs", logs);

        let via_mr = session
            .mapreduce(
                "transaction_logs",
                Schema::new(vec![
                    ("from", ColumnType::Int),
                    ("to", ColumnType::Int),
                    ("weight", ColumnType::Int),
                ]),
                &|row: &[Value]| vec![((row[0].as_i64().unwrap(), row[1].as_i64().unwrap()), 1u32)],
                &|k: &(i64, i64), vs: &[u32]| {
                    vec![vec![k.0.into(), k.1.into(), (vs.len() as i64).into()]]
                },
                2,
            )
            .unwrap();

        for segments in [1, 2, 4] {
            let via_sql = session
                .sql_distributed(
                    "SELECT transferor, transferee, COUNT(*) FROM transaction_logs \
                     GROUP BY transferor, transferee",
                    segments,
                )
                .unwrap();
            assert_eq!(via_sql.n_rows(), via_mr.n_rows());
            for i in 0..via_mr.n_rows() {
                for c in 0..3 {
                    assert_eq!(via_sql.cell(i, c), via_mr.cell(i, c), "row {i} col {c}");
                }
            }
        }
    }

    /// The SQL label-join must reproduce [`World::label_as_of`] at the
    /// slice's label cutoff for every training record, and be identical
    /// across segment counts.
    #[test]
    fn sql_label_join_matches_label_as_of() {
        let (world, slice) = tiny_setup();
        let range = world.record_range(slice.train_days.clone());
        let expected: Vec<f32> = range
            .clone()
            .map(|i| world.label_as_of(i, slice.label_cutoff()))
            .collect();
        assert!(
            expected.iter().any(|&l| l > 0.5),
            "fixture must contain matured fraud"
        );
        let serial = labels_via_sql(&world, &slice, 1).unwrap();
        assert_eq!(serial, expected);
        assert_eq!(labels_via_sql(&world, &slice, 4).unwrap(), expected);
    }

    #[test]
    fn out_of_range_slice_is_rejected() {
        let (world, mut slice) = tiny_setup();
        slice.test_day = 10_000;
        let result = OfflinePipeline::new(PipelineConfig::quick()).run(&world, &slice);
        assert!(matches!(
            result.err(),
            Some(TitAntError::SliceOutOfRange { .. })
        ));
    }

    #[test]
    fn score_at_rate_picks_the_kth_score() {
        let scores = [0.9f32, 0.5, 0.7, 0.1];
        assert_eq!(score_at_rate(&scores, 0.25), 0.9);
        assert_eq!(score_at_rate(&scores, 0.5), 0.7);
        assert_eq!(score_at_rate(&scores, 0.0), f32::INFINITY);
    }

    #[test]
    fn embeddings_disabled_yields_basic_only_model() {
        let (world, slice) = tiny_setup();
        let artifacts = OfflinePipeline::new(PipelineConfig {
            embedding_dim: 0,
            ..PipelineConfig::quick()
        })
        .run(&world, &slice)
        .unwrap();
        assert_eq!(
            artifacts.model_file.n_features,
            titant_datagen::N_BASIC_FEATURES
        );
    }

    /// The feature store must not depend on the upload thread count: the
    /// same users, cells, and bytes regardless of how the work is sharded.
    /// `embedding_dim: 0` keeps every upstream stage bit-deterministic
    /// (Hogwild SGNS is thread-count-dependent by design).
    #[test]
    fn upload_is_identical_across_thread_counts() {
        let (world, slice) = tiny_setup();
        let dump = |threads: usize| {
            let artifacts = OfflinePipeline::new(PipelineConfig {
                embedding_dim: 0,
                threads,
                use_batch_layer: false,
                ..PipelineConfig::quick()
            })
            .run(&world, &slice)
            .unwrap();
            let rows = artifacts.feature_table.scan_rows(
                &titant_alihbase::RowKey::from_str(""),
                &titant_alihbase::RowKey::from_str("\u{10FFFF}"),
            );
            assert!(!rows.is_empty());
            rows
        };
        let serial = dump(1);
        assert_eq!(serial, dump(2));
        assert_eq!(serial, dump(4));
    }
}
