//! Property test: the compiled flat engine is invisible to callers.
//!
//! Random GBDT configurations — including depth-limit stumps and
//! `min_samples_leaf` floors large enough to force single-leaf trees — are
//! fitted on random datasets, then probed with random rows including NaN
//! features in arbitrary positions. Every raw score from the
//! [`FlatForest`] descent must match the `RegNode` reference walk bit for
//! bit, and the blocked batch kernel must match the single-row descent bit
//! for bit across block boundaries.

use proptest::prelude::*;
use titant_models::{Dataset, FlatForest, GbdtConfig, GbdtObjective};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn unit_f32(state: &mut u64) -> f32 {
    (splitmix64(state) >> 40) as f32 / (1u64 << 24) as f32
}

fn random_dataset(n_rows: usize, n_cols: usize, seed: u64) -> Dataset {
    let mut d = Dataset::new(n_cols);
    let mut state = seed;
    for _ in 0..n_rows {
        let row: Vec<f32> = (0..n_cols).map(|_| unit_f32(&mut state)).collect();
        let label = ((row[0] > 0.5) != (row[n_cols - 1] > 0.4)) as u8 as f32;
        d.push_row(&row, label);
    }
    d
}

/// A probe row decoded from `(seed, nan_mask)`: random unit values with
/// NaN substituted wherever the mask bit for that column is set.
fn probe_row(n_cols: usize, seed: u64, nan_mask: u8) -> Vec<f32> {
    let mut state = seed ^ 0xabcd_ef01;
    (0..n_cols)
        .map(|c| {
            if nan_mask & (1 << (c % 8)) != 0 {
                f32::NAN
            } else {
                unit_f32(&mut state)
            }
        })
        .collect()
}

proptest! {
    #[test]
    fn flat_engine_bit_identical_to_reference_walk(
        n_cols in 2usize..6,
        n_trees in 1usize..12,
        max_depth in 1usize..5,
        // 0 → normal leaves; 1 → floor of 25 (shallow trees); 2 → floor far
        // above the row count, forcing every tree to a single leaf.
        leaf_mode in 0u8..3,
        objective_sel in 0u8..2,
        data_seed in 0u64..1_000,
        probes in prop::collection::vec((0u64..u64::MAX, 0u8..=255), 1..25),
    ) {
        let n_rows = 180;
        let data = random_dataset(n_rows, n_cols, data_seed);
        let model = GbdtConfig {
            n_trees,
            max_depth,
            subsample: 0.7,
            colsample: 0.8,
            min_samples_leaf: match leaf_mode {
                0 => 4,
                1 => 25,
                _ => 10 * n_rows,
            },
            objective: if objective_sel == 0 {
                GbdtObjective::SquaredError
            } else {
                GbdtObjective::Logistic
            },
            seed: data_seed ^ 0x51,
            ..Default::default()
        }
        .fit(&data);
        let flat: &FlatForest = model.flat();
        prop_assert_eq!(flat.n_trees(), n_trees);
        if leaf_mode == 2 {
            prop_assert_eq!(flat.n_internal_nodes(), 0);
        }

        // Training rows and random probes (with NaN features) through the
        // single-row descent vs the reference enum walk.
        for i in 0..data.n_rows() {
            let row = data.row(i);
            prop_assert_eq!(
                flat.raw_score(row).to_bits(),
                model.raw_score_reference(row).to_bits()
            );
        }
        let mut probe_data = Dataset::new(n_cols);
        for (seed, nan_mask) in &probes {
            let row = probe_row(n_cols, *seed, *nan_mask);
            prop_assert_eq!(
                flat.raw_score(&row).to_bits(),
                model.raw_score_reference(&row).to_bits()
            );
            probe_data.push_row(&row, 0.0);
        }

        // Blocked batch kernel vs single-row descent, NaN rows included.
        let blocked = flat.raw_scores_blocked(&probe_data, 0..probe_data.n_rows());
        for (i, b) in blocked.iter().enumerate() {
            prop_assert_eq!(b.to_bits(), flat.raw_score(probe_data.row(i)).to_bits());
        }
    }
}
