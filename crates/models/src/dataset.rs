//! Dense in-memory dataset: the common currency of all detection methods.
//!
//! Row-major `f32` storage keeps single-row scoring (the model server's hot
//! path) contiguous; column views are materialised on demand for training
//! algorithms that iterate feature-wise (tree splits, discretizer fits).

use serde::{Deserialize, Serialize};

/// A dense labelled dataset. Labels are `1.0` (fraud) / `0.0` (normal);
/// unlabelled datasets (anomaly detection input) carry an empty label vec.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    n_cols: usize,
    /// Row-major feature values, `len == n_rows * n_cols`.
    values: Vec<f32>,
    /// One label per row, or empty when unlabelled.
    labels: Vec<f32>,
    /// Optional feature names (diagnostics, model dumps).
    feature_names: Vec<String>,
}

impl Dataset {
    /// Create an empty dataset with `n_cols` features.
    pub fn new(n_cols: usize) -> Self {
        Self {
            n_cols,
            ..Default::default()
        }
    }

    /// Attach human-readable feature names.
    ///
    /// # Panics
    /// Panics if the name count does not match the column count.
    pub fn with_feature_names(mut self, names: Vec<String>) -> Self {
        assert_eq!(names.len(), self.n_cols, "feature name count mismatch");
        self.feature_names = names;
        self
    }

    /// Build from pre-assembled parts.
    ///
    /// # Panics
    /// Panics when `values.len()` is not a multiple of `n_cols`, or when a
    /// non-empty label vector disagrees with the row count.
    pub fn from_parts(n_cols: usize, values: Vec<f32>, labels: Vec<f32>) -> Self {
        assert!(n_cols > 0, "dataset needs at least one column");
        assert_eq!(values.len() % n_cols, 0, "ragged dataset");
        let rows = values.len() / n_cols;
        assert!(
            labels.is_empty() || labels.len() == rows,
            "label count {} != row count {rows}",
            labels.len()
        );
        Self {
            n_cols,
            values,
            labels,
            feature_names: Vec::new(),
        }
    }

    /// Append a labelled row.
    ///
    /// # Panics
    /// Panics if `row.len() != n_cols()`.
    pub fn push_row(&mut self, row: &[f32], label: f32) {
        assert_eq!(row.len(), self.n_cols, "row width mismatch");
        self.values.extend_from_slice(row);
        self.labels.push(label);
    }

    /// Append an unlabelled row (only valid while the dataset has no labels).
    pub fn push_unlabeled_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.n_cols, "row width mismatch");
        assert!(
            self.labels.is_empty(),
            "cannot mix labelled and unlabelled rows"
        );
        self.values.extend_from_slice(row);
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.values.len().checked_div(self.n_cols).unwrap_or(0)
    }

    /// Number of feature columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Whether the dataset carries labels.
    #[inline]
    pub fn is_labeled(&self) -> bool {
        !self.labels.is_empty()
    }

    /// Row `i` as a feature slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        let a = i * self.n_cols;
        &self.values[a..a + self.n_cols]
    }

    /// Label of row `i`.
    ///
    /// # Panics
    /// Panics on unlabelled datasets.
    #[inline]
    pub fn label(&self, i: usize) -> f32 {
        self.labels[i]
    }

    /// All labels.
    #[inline]
    pub fn labels(&self) -> &[f32] {
        &self.labels
    }

    /// Feature names, empty if unset.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Name of feature `j`, or a generated `f{j}` placeholder.
    pub fn feature_name(&self, j: usize) -> String {
        self.feature_names
            .get(j)
            .cloned()
            .unwrap_or_else(|| format!("f{j}"))
    }

    /// Materialise column `j` as a vector.
    pub fn column(&self, j: usize) -> Vec<f32> {
        assert!(j < self.n_cols, "column {j} out of range");
        (0..self.n_rows()).map(|i| self.row(i)[j]).collect()
    }

    /// Fraction of positive labels (the class imbalance the paper highlights).
    pub fn positive_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l > 0.5).count() as f64 / self.labels.len() as f64
    }

    /// A new dataset containing only the given rows (in the given order).
    pub fn subset(&self, rows: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.n_cols);
        out.feature_names = self.feature_names.clone();
        out.values.reserve(rows.len() * self.n_cols);
        if self.is_labeled() {
            out.labels.reserve(rows.len());
        }
        for &r in rows {
            out.values.extend_from_slice(self.row(r));
            if self.is_labeled() {
                out.labels.push(self.labels[r]);
            }
        }
        out
    }

    /// Horizontally concatenate extra feature columns (e.g. node embeddings
    /// appended to basic features). `extra` must have the same row count.
    pub fn hconcat(&self, extra: &Dataset) -> Dataset {
        assert_eq!(
            self.n_rows(),
            extra.n_rows(),
            "row count mismatch in hconcat"
        );
        let n_cols = self.n_cols + extra.n_cols;
        let mut values = Vec::with_capacity(self.n_rows() * n_cols);
        for i in 0..self.n_rows() {
            values.extend_from_slice(self.row(i));
            values.extend_from_slice(extra.row(i));
        }
        let mut names = self.feature_names.clone();
        if !names.is_empty() || !extra.feature_names.is_empty() {
            while names.len() < self.n_cols {
                names.push(format!("f{}", names.len()));
            }
            for j in 0..extra.n_cols {
                names.push(extra.feature_name(j));
            }
        }
        let mut out = Dataset::from_parts(n_cols, values, self.labels.clone());
        out.feature_names = names;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(2);
        d.push_row(&[1.0, 2.0], 0.0);
        d.push_row(&[3.0, 4.0], 1.0);
        d.push_row(&[5.0, 6.0], 0.0);
        d
    }

    #[test]
    fn shape_and_access() {
        let d = toy();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.n_cols(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert_eq!(d.label(1), 1.0);
        assert_eq!(d.column(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn positive_rate() {
        let d = toy();
        assert!((d.positive_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(Dataset::new(3).positive_rate(), 0.0);
    }

    #[test]
    fn subset_preserves_order_and_labels() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.label(1), 0.0);
    }

    #[test]
    fn hconcat_appends_columns() {
        let d = toy();
        let mut e = Dataset::new(1);
        for v in [9.0, 8.0, 7.0] {
            e.push_unlabeled_row(&[v]);
        }
        let c = d.hconcat(&e);
        assert_eq!(c.n_cols(), 3);
        assert_eq!(c.row(0), &[1.0, 2.0, 9.0]);
        assert_eq!(c.labels(), d.labels());
    }

    #[test]
    fn feature_names_default_and_explicit() {
        let d = Dataset::new(2).with_feature_names(vec!["age".into(), "amt".into()]);
        assert_eq!(d.feature_name(0), "age");
        let d2 = Dataset::new(2);
        assert_eq!(d2.feature_name(1), "f1");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_row_panics() {
        Dataset::new(2).push_row(&[1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_from_parts_panics() {
        Dataset::from_parts(2, vec![1.0, 2.0, 3.0], vec![]);
    }

    #[test]
    fn unlabeled_dataset() {
        let mut d = Dataset::new(1);
        d.push_unlabeled_row(&[1.0]);
        assert!(!d.is_labeled());
        assert_eq!(d.n_rows(), 1);
    }
}
