//! Gradient Boosting Decision Trees (paper §3.3, Friedman 1999/2002).
//!
//! TitAnt's production classifier. The paper's configuration: 400 trees of
//! depth 3, root-mean-square error as the objective (least-squares boosting
//! on 0/1 labels), and a 0.4 subsampling rate for both samples and features
//! "to prevent overfitting" (§5.1) — i.e. Friedman's *stochastic* gradient
//! boosting.
//!
//! The implementation is histogram-based: every feature is pre-binned once
//! into ≤`bins` equal-frequency buckets ([`binned::BinnedMatrix`]), and each
//! tree node accumulates per-bin gradient/hessian sums to evaluate all
//! split candidates in one pass — the same design as LightGBM/XGBoost's
//! `hist` mode, scaled down.

pub mod binned;
pub mod flat;
pub mod tree;

use crate::dataset::Dataset;
use crate::traits::Classifier;
use binned::BinnedMatrix;
use flat::FlatForest;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use titant_parallel::Pool;
use tree::{RegTree, TreeParams};

/// Below this many rows the per-round element-wise passes (gradients,
/// score updates) run inline; scoped-spawn overhead would dominate.
const PAR_ROWS_MIN: usize = 8 * 1024;

/// Loss minimised by the ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GbdtObjective {
    /// Least squares on 0/1 labels — the paper's "root mean square error"
    /// objective. Scores are clamped to `[0, 1]`.
    SquaredError,
    /// Logistic loss; scores pass through a sigmoid.
    Logistic,
}

/// GBDT training parameters; defaults mirror the paper's production setting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Boosting rounds (paper: 400).
    pub n_trees: usize,
    /// Maximum tree depth (paper: 3).
    pub max_depth: usize,
    /// Shrinkage applied to every leaf.
    pub learning_rate: f64,
    /// Fraction of rows sampled (without replacement) per tree (paper: 0.4).
    pub subsample: f64,
    /// Fraction of features sampled per tree (paper: 0.4).
    pub colsample: f64,
    /// Objective function (paper: squared error).
    pub objective: GbdtObjective,
    /// L2 regularisation on leaf values.
    pub reg_lambda: f64,
    /// Minimum rows per leaf.
    pub min_samples_leaf: usize,
    /// Histogram bins per feature.
    pub bins: usize,
    /// RNG seed for row/feature subsampling.
    pub seed: u64,
    /// Worker threads for training and batch prediction; `0` = auto-detect
    /// via [`std::thread::available_parallelism`]. Training is
    /// **deterministic for a fixed seed regardless of thread count**: the
    /// parallel split search, row partition and element-wise passes are
    /// bit-identical to the single-threaded trainer.
    pub threads: usize,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            n_trees: 400,
            max_depth: 3,
            learning_rate: 0.1,
            subsample: 0.4,
            colsample: 0.4,
            objective: GbdtObjective::SquaredError,
            reg_lambda: 1.0,
            min_samples_leaf: 4,
            bins: 64,
            seed: 0x6bd7,
            threads: 0,
        }
    }
}

/// Which traversal serves predictions. The compiled flat engine is the
/// default everywhere; the reference walk is retained so the
/// `predict_latency` bench (and any doubter) can A/B the two end to end.
/// The knob is never serialized — a loaded model always serves flat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PredictEngine {
    /// Compiled [`FlatForest`] kernels (single-row descent; blocked batch).
    #[default]
    Flat,
    /// The original per-tree `RegNode` enum walk.
    Reference,
}

/// A trained gradient-boosted ensemble.
#[derive(Debug, Clone)]
pub struct Gbdt {
    trees: Vec<RegTree>,
    base_score: f64,
    objective: GbdtObjective,
    n_features: usize,
    /// Batch-prediction worker count carried over from the training config
    /// (`0` = auto). Row-parallel scoring never changes the per-row result.
    threads: usize,
    /// Serving engine selector; defaults to [`PredictEngine::Flat`] and is
    /// deliberately not persisted.
    engine: PredictEngine,
    /// Compiled flat form, built once per model (at fit time, on first use
    /// after deserialization, or eagerly via [`Gbdt::flat`]).
    flat: OnceLock<FlatForest>,
    /// Reusable batch-prediction worker pool, built on first batch call
    /// instead of once per `predict_batch` invocation.
    pool: OnceLock<Pool>,
}

/// Manual serde impls: the compiled flat form, the engine knob and the
/// worker pool are serving-time state, not model state — only the five
/// fields the derived impl used to emit are persisted, so the artifact
/// format is unchanged and a loaded model recompiles (and always serves
/// the flat engine) on its own.
impl Serialize for Gbdt {
    fn serialize(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("trees".to_string(), self.trees.serialize()),
            ("base_score".to_string(), self.base_score.serialize()),
            ("objective".to_string(), self.objective.serialize()),
            ("n_features".to_string(), self.n_features.serialize()),
            ("threads".to_string(), self.threads.serialize()),
        ])
    }
}

impl Deserialize for Gbdt {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct `Gbdt`"))?;
        Ok(Gbdt {
            trees: Deserialize::deserialize(serde::field(entries, "trees")?)?,
            base_score: Deserialize::deserialize(serde::field(entries, "base_score")?)?,
            objective: Deserialize::deserialize(serde::field(entries, "objective")?)?,
            n_features: Deserialize::deserialize(serde::field(entries, "n_features")?)?,
            threads: Deserialize::deserialize(serde::field(entries, "threads")?)?,
            engine: PredictEngine::default(),
            flat: OnceLock::new(),
            pool: OnceLock::new(),
        })
    }
}

impl GbdtConfig {
    /// Train on raw continuous/mixed features.
    ///
    /// # Panics
    /// Panics on unlabelled or empty data, or invalid fractions.
    pub fn fit(&self, data: &Dataset) -> Gbdt {
        assert!(data.is_labeled(), "GBDT needs labels");
        assert!(data.n_rows() > 1, "GBDT needs at least two rows");
        assert!(
            self.subsample > 0.0 && self.subsample <= 1.0,
            "subsample must be in (0, 1]"
        );
        assert!(
            self.colsample > 0.0 && self.colsample <= 1.0,
            "colsample must be in (0, 1]"
        );
        let n = data.n_rows();
        let pool = Pool::new(self.threads);
        let matrix = BinnedMatrix::build_with_pool(data, self.bins, &pool);

        let base_score = match self.objective {
            GbdtObjective::SquaredError => {
                data.labels().iter().map(|&y| y as f64).sum::<f64>() / n as f64
            }
            GbdtObjective::Logistic => {
                let p = data.positive_rate().clamp(1e-6, 1.0 - 1e-6);
                (p / (1.0 - p)).ln()
            }
        };

        let mut scores = vec![base_score; n];
        let mut grad = vec![0f32; n];
        let mut hess = vec![0f32; n];
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trees = Vec::with_capacity(self.n_trees);

        let n_rows_sampled = ((n as f64 * self.subsample).round() as usize).clamp(1, n);
        let n_feats = data.n_cols();
        let n_feats_sampled =
            ((n_feats as f64 * self.colsample).round() as usize).clamp(1, n_feats);
        let mut row_pool: Vec<u32> = (0..n as u32).collect();
        let mut feat_pool: Vec<u32> = (0..n_feats as u32).collect();

        let params = TreeParams {
            max_depth: self.max_depth,
            reg_lambda: self.reg_lambda,
            min_samples_leaf: self.min_samples_leaf,
        };

        let elementwise_pool = if n >= PAR_ROWS_MIN {
            pool.clone()
        } else {
            Pool::serial()
        };
        for _ in 0..self.n_trees {
            // Gradients of the current ensemble: element-wise over disjoint
            // row chunks, so the values are thread-count independent.
            elementwise_pool.for_chunks_mut2(&mut grad, &mut hess, |off, gc, hc| {
                for (k, (g, h)) in gc.iter_mut().zip(hc.iter_mut()).enumerate() {
                    let i = off + k;
                    let y = f64::from(data.label(i));
                    match self.objective {
                        GbdtObjective::SquaredError => {
                            *g = (scores[i] - y) as f32;
                            *h = 1.0;
                        }
                        GbdtObjective::Logistic => {
                            let p = 1.0 / (1.0 + (-scores[i]).exp());
                            *g = (p - y) as f32;
                            *h = (p * (1.0 - p)).max(1e-6) as f32;
                        }
                    }
                }
            });
            // Stochastic GB: sample rows and features without replacement.
            // The RNG is consumed on this thread only, so subsampling is
            // untouched by the worker count.
            row_pool.shuffle(&mut rng);
            let rows = &row_pool[..n_rows_sampled];
            feat_pool.shuffle(&mut rng);
            let mut feats: Vec<u32> = feat_pool[..n_feats_sampled].to_vec();
            feats.sort_unstable();

            let tree = RegTree::fit(&matrix, rows, &feats, &grad, &hess, &params, &pool);
            // Update scores of *all* rows with the shrunken tree output.
            elementwise_pool.for_chunks_mut(&mut scores, 1, |off, chunk| {
                for (k, s) in chunk.iter_mut().enumerate() {
                    *s += self.learning_rate * tree.predict_binned(&matrix, (off + k) as u32);
                }
            });
            trees.push(tree);
        }

        let model = Gbdt {
            trees,
            base_score,
            objective: self.objective,
            n_features: n_feats,
            threads: self.threads,
            engine: PredictEngine::default(),
            flat: OnceLock::new(),
            pool: OnceLock::new(),
        };
        // Compile the serving form while the trainer still owns the model,
        // so the first request never pays the lowering cost.
        model.flat();
        model
    }
}

impl Gbdt {
    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Override the batch-prediction worker count (`0` = auto). The thread
    /// count is a serving knob, not a model property: callers that resolve
    /// `threads: 0` before training use this to persist the *configured*
    /// value, keeping the serialized artifact independent of the training
    /// machine's core count. Drops any already-built pool so the next batch
    /// call spawns with the new count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self.pool = OnceLock::new();
        self
    }

    /// Select the serving engine (bench/debug knob; flat is the default).
    pub fn with_engine(mut self, engine: PredictEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The compiled flat form, lowering the ensemble on first call. Fit
    /// builds it eagerly; deserialization paths call this once at load.
    pub fn flat(&self) -> &FlatForest {
        self.flat
            .get_or_init(|| FlatForest::compile(&self.trees, self.base_score, self.n_features))
    }

    /// Whether the flat form has already been compiled (no compile work on
    /// the request path once this returns true).
    pub fn is_compiled(&self) -> bool {
        self.flat.get().is_some()
    }

    /// The reusable batch-prediction pool, spawned lazily on first use.
    fn pool(&self) -> &Pool {
        self.pool.get_or_init(|| Pool::new(self.threads))
    }

    /// The objective's output map from raw additive score to probability.
    #[inline]
    fn transform(&self, s: f64) -> f32 {
        match self.objective {
            GbdtObjective::SquaredError => s.clamp(0.0, 1.0) as f32,
            GbdtObjective::Logistic => (1.0 / (1.0 + (-s).exp())) as f32,
        }
    }

    /// Raw additive score before the objective's output transform, served
    /// by the engine selected via [`Gbdt::with_engine`].
    pub fn raw_score(&self, features: &[f32]) -> f64 {
        match self.engine {
            PredictEngine::Flat => self.flat().raw_score(features),
            PredictEngine::Reference => self.raw_score_reference(features),
        }
    }

    /// The original per-tree `RegNode` enum walk. Kept as the ground truth
    /// the compiled engine is gated against (`predict_latency` bench, the
    /// flat-equivalence property test); bit-identical to
    /// [`FlatForest::raw_score`] by construction.
    pub fn raw_score_reference(&self, features: &[f32]) -> f64 {
        debug_assert_eq!(features.len(), self.n_features);
        let mut s = self.base_score;
        for t in &self.trees {
            s += t.predict_raw(features);
        }
        s
    }

    /// Total split gain attributed to each feature (importance).
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for t in &self.trees {
            t.accumulate_importance(&mut imp);
        }
        imp
    }
}

impl Classifier for Gbdt {
    fn predict_proba(&self, features: &[f32]) -> f32 {
        self.transform(self.raw_score(features))
    }

    /// Row-parallel batch scoring: rows are scored independently over
    /// contiguous chunks and concatenated in chunk order, so the output
    /// equals the serial row-by-row map exactly. The flat engine scores
    /// each chunk with the blocked tree-at-a-time kernel; raw sums keep
    /// tree order, so every element still matches `predict_proba` of that
    /// row bit for bit. The worker pool is built once and reused across
    /// calls (a fresh scoped-pool spawn per batch used to sit on the
    /// serving path).
    fn predict_batch(&self, data: &Dataset) -> Vec<f32> {
        let n = data.n_rows();
        let pool = self.pool();
        if let PredictEngine::Flat = self.engine {
            let flat = self.flat();
            if pool.threads() <= 1 || n < 1024 {
                let mut out = vec![0f32; n];
                flat.predict_blocked_into(data, 0..n, |s| self.transform(s), &mut out);
                return out;
            }
            let chunks = pool.map_ranges(n, |_, r| {
                let mut out = vec![0f32; r.len()];
                flat.predict_blocked_into(data, r, |s| self.transform(s), &mut out);
                out
            });
            return chunks.concat();
        }
        if pool.threads() <= 1 || n < 1024 {
            return (0..n).map(|i| self.predict_proba(data.row(i))).collect();
        }
        let chunks = pool.map_ranges(n, |_, r| {
            r.map(|i| self.predict_proba(data.row(i)))
                .collect::<Vec<f32>>()
        });
        chunks.concat()
    }

    fn name(&self) -> &'static str {
        "GBDT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Nonlinear target: label = 1 iff (x > 0.5) XOR (y > 0.5), a pattern a
    /// linear model cannot express but depth-2+ trees can.
    fn xor_continuous(n: usize) -> Dataset {
        let mut d = Dataset::new(2);
        let mut state = 13u64;
        let mut rand01 = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f32 / (1u64 << 31) as f32
        };
        for _ in 0..n {
            let (x, y) = (rand01(), rand01());
            let label = ((x > 0.5) != (y > 0.5)) as u8 as f32;
            d.push_row(&[x, y], label);
        }
        d
    }

    fn quick_cfg() -> GbdtConfig {
        GbdtConfig {
            n_trees: 60,
            learning_rate: 0.3,
            subsample: 0.8,
            colsample: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn learns_xor_with_squared_error() {
        let d = xor_continuous(1500);
        let m = quick_cfg().fit(&d);
        assert!(m.predict_proba(&[0.9, 0.1]) > 0.7);
        assert!(m.predict_proba(&[0.1, 0.9]) > 0.7);
        assert!(m.predict_proba(&[0.9, 0.9]) < 0.3);
        assert!(m.predict_proba(&[0.1, 0.1]) < 0.3);
    }

    #[test]
    fn learns_xor_with_logistic() {
        let d = xor_continuous(1500);
        let m = GbdtConfig {
            objective: GbdtObjective::Logistic,
            ..quick_cfg()
        }
        .fit(&d);
        assert!(m.predict_proba(&[0.9, 0.1]) > 0.7);
        assert!(m.predict_proba(&[0.9, 0.9]) < 0.3);
    }

    #[test]
    fn scores_in_unit_interval() {
        let d = xor_continuous(300);
        let m = quick_cfg().fit(&d);
        for i in 0..d.n_rows() {
            let p = m.predict_proba(d.row(i));
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn more_trees_fit_training_data_better() {
        let d = xor_continuous(800);
        let small = GbdtConfig {
            n_trees: 5,
            ..quick_cfg()
        }
        .fit(&d);
        let large = GbdtConfig {
            n_trees: 100,
            ..quick_cfg()
        }
        .fit(&d);
        let err = |m: &Gbdt| -> f64 {
            (0..d.n_rows())
                .map(|i| {
                    let p = m.predict_proba(d.row(i)) as f64;
                    (p - d.label(i) as f64).powi(2)
                })
                .sum::<f64>()
                / d.n_rows() as f64
        };
        assert!(err(&large) < err(&small));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = xor_continuous(200);
        let m1 = quick_cfg().fit(&d);
        let m2 = quick_cfg().fit(&d);
        assert_eq!(m1.predict_proba(&[0.3, 0.8]), m2.predict_proba(&[0.3, 0.8]));
    }

    /// Wider nonlinear dataset for the cross-thread determinism tests:
    /// 8 features, enough rows to clear the parallel-path thresholds.
    fn wide_nonlinear(n: usize) -> Dataset {
        let mut d = Dataset::new(8);
        let mut state = 29u64;
        let mut rand01 = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f32 / (1u64 << 31) as f32
        };
        for _ in 0..n {
            let row: Vec<f32> = (0..8).map(|_| rand01()).collect();
            let label = ((row[1] > 0.5) != (row[6] > 0.4)) as u8 as f32;
            d.push_row(&row, label);
        }
        d
    }

    /// The seeded determinism contract of the tentpole: for a fixed seed,
    /// the model trained with 1, 2 and 4 worker threads produces
    /// bit-identical predictions on every training row. 10 000 rows × 8
    /// features clears every parallel threshold (binning, split search,
    /// partition, element-wise passes), so the parallel code paths are what
    /// is being compared, not the serial fallbacks.
    #[test]
    fn multithreaded_training_matches_single_threaded() {
        let d = wide_nonlinear(10_000);
        let cfg = |threads: usize| GbdtConfig {
            n_trees: 12,
            subsample: 0.9,
            colsample: 1.0,
            threads,
            ..Default::default()
        };
        let reference = cfg(1).fit(&d);
        let ref_preds = reference.predict_batch(&d);
        for threads in [2usize, 4] {
            let m = cfg(threads).fit(&d);
            let preds = m.predict_batch(&d);
            assert_eq!(
                preds, ref_preds,
                "threads={threads}: parallel training diverged from serial"
            );
        }
    }

    /// The tentpole's end-to-end contract: the compiled flat engine and the
    /// retained reference walk serve the same bits, per row and per batch,
    /// and `fit` compiles the flat form eagerly.
    #[test]
    fn flat_engine_matches_reference_engine_bitwise() {
        let d = wide_nonlinear(2_000);
        let m = GbdtConfig {
            n_trees: 15,
            subsample: 0.8,
            colsample: 1.0,
            ..Default::default()
        }
        .fit(&d);
        assert!(m.is_compiled(), "fit should compile the flat form eagerly");
        let reference = m.clone().with_engine(PredictEngine::Reference);
        for i in 0..d.n_rows() {
            let row = d.row(i);
            assert_eq!(
                m.raw_score(row).to_bits(),
                reference.raw_score(row).to_bits(),
                "row {i}"
            );
            assert_eq!(
                m.predict_proba(row).to_bits(),
                reference.predict_proba(row).to_bits()
            );
        }
        let flat_batch: Vec<u32> = m.predict_batch(&d).iter().map(|p| p.to_bits()).collect();
        let ref_batch: Vec<u32> = reference
            .predict_batch(&d)
            .iter()
            .map(|p| p.to_bits())
            .collect();
        assert_eq!(flat_batch, ref_batch);
    }

    /// Satellite: the batch pool is built once and reused — repeated calls
    /// return identical output and `with_threads` takes effect by dropping
    /// the cached pool.
    #[test]
    fn predict_batch_pool_is_reused_and_resettable() {
        let d = wide_nonlinear(3_000);
        let m = GbdtConfig {
            n_trees: 8,
            subsample: 0.8,
            colsample: 1.0,
            threads: 3,
            ..Default::default()
        }
        .fit(&d);
        let first = m.predict_batch(&d);
        let pool_ptr = std::ptr::from_ref(m.pool());
        assert_eq!(m.predict_batch(&d), first, "second call diverged");
        assert!(
            std::ptr::eq(pool_ptr, std::ptr::from_ref(m.pool())),
            "pool was rebuilt between calls"
        );
        let serial = m.with_threads(1);
        assert_eq!(serial.pool().threads(), 1);
        assert_eq!(
            serial.predict_batch(&d),
            first,
            "thread count changed output"
        );
    }

    #[test]
    fn parallel_predict_batch_matches_serial_map() {
        let d = wide_nonlinear(3_000);
        let m = GbdtConfig {
            n_trees: 10,
            subsample: 0.8,
            colsample: 1.0,
            threads: 4,
            ..Default::default()
        }
        .fit(&d);
        let serial: Vec<f32> = (0..d.n_rows()).map(|i| m.predict_proba(d.row(i))).collect();
        assert_eq!(m.predict_batch(&d), serial);
    }

    #[test]
    fn feature_importance_finds_informative_features() {
        // f0 informative, f1 pure noise.
        let mut d = Dataset::new(2);
        let mut state = 21u64;
        let mut rand01 = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f32 / (1u64 << 31) as f32
        };
        for _ in 0..800 {
            let x = rand01();
            d.push_row(&[x, rand01()], (x > 0.5) as u8 as f32);
        }
        let m = quick_cfg().fit(&d);
        let imp = m.feature_importance();
        assert!(imp[0] > imp[1] * 5.0, "importance {imp:?}");
    }

    #[test]
    fn base_score_matches_label_mean_for_squared_error() {
        let mut d = Dataset::new(1);
        for i in 0..10 {
            d.push_row(&[i as f32], if i < 2 { 1.0 } else { 0.0 });
        }
        let m = GbdtConfig {
            n_trees: 0,
            ..quick_cfg()
        }
        .fit(&d);
        assert!((m.raw_score(&[0.0]) - 0.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "subsample")]
    fn invalid_subsample_rejected() {
        let d = xor_continuous(10);
        GbdtConfig {
            subsample: 0.0,
            ..Default::default()
        }
        .fit(&d);
    }
}
