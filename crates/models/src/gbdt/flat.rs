//! Compiled flat-ensemble inference: the GBDT serving engine.
//!
//! The reference serving walk ([`RegTree::predict_raw`]) descends a
//! `Vec<RegNode>` per tree through an enum match — every step chases a
//! pointer into a heap allocation, branches on the variant tag, and drags
//! the training-only fields (`bin_split`, `gain`) through the cache. At 400
//! trees per score that layout is the dominant serving cost once feature
//! fetch is cheap.
//!
//! [`FlatForest`] lowers the fitted ensemble once into contiguous
//! structure-of-arrays storage shared by **all** trees:
//!
//! * `feature: Vec<u32>`, `threshold: Vec<f32>` — one entry per *internal*
//!   node, nothing else. A depth-3 tree's whole split state fits in a
//!   couple of cache lines.
//! * `children: Vec<[i32; 2]>` — packed child references. A non-negative
//!   reference is an arena node index; a negative one encodes a leaf as
//!   `!index` into the separate `leaf_values` array, so the descent loop
//!   needs no variant tag at all.
//! * `roots: Vec<i32>` — one reference per tree (a single-leaf tree's root
//!   is itself a leaf reference).
//!
//! Trees are lowered in preorder and concatenated, so an ensemble walk
//! streams forward through one arena instead of hopping between per-tree
//! heap `Vec`s.
//!
//! Two traversal kernels sit on top:
//!
//! * [`FlatForest::raw_score`] — branch-light single-row descent. The
//!   branch `v >= threshold` is `false` for NaN, which reproduces the
//!   reference walk's NaN-goes-left rule without testing `is_nan()`.
//!   Leaf values accumulate into an `f64` in tree order, so the sum is
//!   bit-identical to [`super::Gbdt::raw_score_reference`].
//! * [`FlatForest::predict_blocked_into`] — blocked batch scoring: rows are
//!   processed in fixed [`BLOCK_ROWS`]-row blocks *tree-at-a-time*, so one
//!   tree's nodes stay hot in cache across the whole block instead of being
//!   evicted by the other trees between consecutive rows. Per-block state
//!   is a stack array; the kernel allocates nothing per row.
//!
//! The [`TraversalCounts`] instrumentation mirrors both kernels so the
//! `predict_latency` bench can gate the cache claim on *counted* work (the
//! container has one core, so wall clock alone proves nothing): node visits
//! must be conserved exactly between the two orders while the blocked order
//! performs strictly fewer node touches in a freshly-switched ("cold")
//! tree.

use super::tree::{RegNode, RegTree};
use crate::dataset::Dataset;
use std::ops::Range;

/// Rows per block of the blocked batch kernel. 64 rows keep the per-block
/// accumulator (512 B of `f64`) inside one page while amortising each
/// tree's node loads over enough descents to matter.
pub const BLOCK_ROWS: usize = 64;

/// Traversal-cost counters for the predict bench.
///
/// `node_visits` counts internal-node touches, `leaf_visits` terminal
/// touches. A descent is *cold* when it enters a tree other than the most
/// recently descended one — its node loads (`cold_node_visits`) are the
/// cache-line-equivalent cost model the blocked kernel exists to shrink:
/// per-row scoring switches trees on every descent, the blocked kernel
/// only once per tree per block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalCounts {
    /// Internal (split) nodes touched.
    pub node_visits: u64,
    /// Leaf values read.
    pub leaf_visits: u64,
    /// Descents that entered a different tree than the previous descent.
    pub tree_switches: u64,
    /// Node + leaf touches made by cold descents.
    pub cold_node_visits: u64,
    /// Most recently descended tree, carried across calls.
    last_tree: Option<u32>,
}

/// The compiled ensemble. Built once per fitted/loaded model by
/// [`super::Gbdt::flat`]; immutable afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatForest {
    /// Ensemble intercept, added before any tree output.
    base_score: f64,
    /// Input width the rows must have.
    n_features: usize,
    /// Per-tree root references (`>= 0` node index, `< 0` = `!leaf_index`).
    roots: Vec<i32>,
    /// Split feature per internal node, all trees concatenated.
    feature: Vec<u32>,
    /// Split threshold per internal node (`value < threshold` goes left,
    /// NaN goes left).
    threshold: Vec<f32>,
    /// Packed `[left, right]` child references per internal node.
    children: Vec<[i32; 2]>,
    /// Leaf outputs, indexed by `!reference`.
    leaf_values: Vec<f32>,
}

impl FlatForest {
    /// Lower a fitted ensemble. Each tree's nodes are already in preorder;
    /// internal nodes map onto the shared arena in that order and leaves
    /// into the leaf-value array, so the compiled descent touches nodes in
    /// the exact sequence the reference walk would.
    pub(crate) fn compile(trees: &[RegTree], base_score: f64, n_features: usize) -> Self {
        let total_nodes: usize = trees.iter().map(RegTree::node_count).sum();
        assert!(
            total_nodes < i32::MAX as usize,
            "ensemble too large for 32-bit node references"
        );
        let mut forest = FlatForest {
            base_score,
            n_features,
            roots: Vec::with_capacity(trees.len()),
            feature: Vec::new(),
            threshold: Vec::new(),
            children: Vec::new(),
            leaf_values: Vec::new(),
        };
        let mut refs: Vec<i32> = Vec::new();
        for tree in trees {
            let nodes = tree.nodes();
            // Pass 1: assign every node its arena reference.
            refs.clear();
            let mut next_split = forest.feature.len() as i32;
            let mut next_leaf = forest.leaf_values.len() as i32;
            for node in nodes {
                match node {
                    RegNode::Split { .. } => {
                        refs.push(next_split);
                        next_split += 1;
                    }
                    RegNode::Leaf { .. } => {
                        refs.push(!next_leaf);
                        next_leaf += 1;
                    }
                }
            }
            // Pass 2: emit, resolving children through the reference map.
            for node in nodes {
                match node {
                    RegNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                        ..
                    } => {
                        forest.feature.push(*feature);
                        forest.threshold.push(*threshold);
                        forest
                            .children
                            .push([refs[*left as usize], refs[*right as usize]]);
                    }
                    RegNode::Leaf { value } => forest.leaf_values.push(*value),
                }
            }
            forest.roots.push(refs[0]);
        }
        forest
    }

    /// Trees in the compiled ensemble.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Internal nodes across all trees.
    pub fn n_internal_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Leaves across all trees.
    pub fn n_leaves(&self) -> usize {
        self.leaf_values.len()
    }

    /// Expected input width.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// One branch-light descent: follow `v >= threshold` (false for NaN,
    /// so NaN goes left like the reference walk) until a leaf reference.
    #[inline(always)]
    fn descend(&self, root: i32, row: &[f32]) -> f64 {
        let mut node = root;
        while node >= 0 {
            let i = node as usize;
            let v = row[self.feature[i] as usize];
            node = self.children[i][usize::from(v >= self.threshold[i])];
        }
        f64::from(self.leaf_values[!node as usize])
    }

    /// Raw additive score of one row: base score plus every tree's leaf,
    /// accumulated as `f64` in tree order — bit-identical to the reference
    /// `RegNode` walk.
    #[inline]
    pub fn raw_score(&self, row: &[f32]) -> f64 {
        debug_assert_eq!(row.len(), self.n_features);
        let mut s = self.base_score;
        for &root in &self.roots {
            s += self.descend(root, row);
        }
        s
    }

    /// Blocked batch kernel: score rows `range` of `data` into `out`
    /// (`out.len() == range.len()`), applying `transform` (the objective's
    /// output map) to each raw sum.
    ///
    /// Rows are processed in [`BLOCK_ROWS`]-row blocks, and within a block
    /// the loop runs **tree-at-a-time**: tree `t`'s nodes are descended for
    /// all rows of the block before tree `t + 1` is touched, so each tree's
    /// slice of the arena is loaded once per block instead of once per row.
    /// The per-block accumulator lives on the stack — the kernel performs
    /// zero heap allocations.
    ///
    /// Each row's sum is still `base + tree₀ + tree₁ + …` in tree order, so
    /// every output is bit-identical to [`Self::raw_score`] of that row.
    pub fn predict_blocked_into<F: Fn(f64) -> f32>(
        &self,
        data: &Dataset,
        range: Range<usize>,
        transform: F,
        out: &mut [f32],
    ) {
        assert_eq!(range.len(), out.len(), "output width mismatch");
        let mut acc = [0f64; BLOCK_ROWS];
        let mut row0 = range.start;
        for out_block in out.chunks_mut(BLOCK_ROWS) {
            let acc = &mut acc[..out_block.len()];
            acc.fill(self.base_score);
            for &root in &self.roots {
                for (j, a) in acc.iter_mut().enumerate() {
                    *a += self.descend(root, data.row(row0 + j));
                }
            }
            for (a, o) in acc.iter().zip(out_block.iter_mut()) {
                *o = transform(*a);
            }
            row0 += acc.len();
        }
    }

    /// Raw blocked scores without an output transform (tests and the bench
    /// compare these bits against per-row walks).
    pub fn raw_scores_blocked(&self, data: &Dataset, range: Range<usize>) -> Vec<f64> {
        let mut raw = vec![0f64; range.len()];
        let mut counts = TraversalCounts::default();
        self.raw_scores_blocked_counted(data, range, &mut raw, &mut counts);
        raw
    }

    /// Instrumented single-row walk, trees in ensemble order — the per-row
    /// traversal the bench compares the blocked kernel against. Returns the
    /// same bits as [`Self::raw_score`].
    pub fn raw_score_counted(&self, row: &[f32], counts: &mut TraversalCounts) -> f64 {
        let mut s = self.base_score;
        for (t, &root) in self.roots.iter().enumerate() {
            s += self.descend_counted(t as u32, root, row, counts);
        }
        s
    }

    /// Instrumented blocked kernel: identical traversal order to
    /// [`Self::predict_blocked_into`], raw sums into `out`.
    pub fn raw_scores_blocked_counted(
        &self,
        data: &Dataset,
        range: Range<usize>,
        out: &mut [f64],
        counts: &mut TraversalCounts,
    ) {
        assert_eq!(range.len(), out.len(), "output width mismatch");
        let mut row0 = range.start;
        for block in out.chunks_mut(BLOCK_ROWS) {
            block.fill(self.base_score);
            for (t, &root) in self.roots.iter().enumerate() {
                for (j, a) in block.iter_mut().enumerate() {
                    *a += self.descend_counted(t as u32, root, data.row(row0 + j), counts);
                }
            }
            row0 += block.len();
        }
    }

    /// The counted twin of [`Self::descend`]. A test pins the two to the
    /// same bits so the instrumentation cannot drift from the hot path.
    fn descend_counted(
        &self,
        tree: u32,
        root: i32,
        row: &[f32],
        counts: &mut TraversalCounts,
    ) -> f64 {
        let cold = counts.last_tree != Some(tree);
        if cold {
            counts.tree_switches += 1;
            counts.last_tree = Some(tree);
        }
        let mut touches = 0u64;
        let mut node = root;
        while node >= 0 {
            let i = node as usize;
            let v = row[self.feature[i] as usize];
            node = self.children[i][usize::from(v >= self.threshold[i])];
            touches += 1;
        }
        counts.node_visits += touches;
        counts.leaf_visits += 1;
        if cold {
            counts.cold_node_visits += touches + 1;
        }
        f64::from(self.leaf_values[!node as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbdt::GbdtConfig;

    fn nonlinear(n: usize, n_cols: usize, seed: u64) -> Dataset {
        let mut d = Dataset::new(n_cols);
        let mut state = seed;
        let mut rand01 = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f32 / (1u64 << 31) as f32
        };
        for _ in 0..n {
            let row: Vec<f32> = (0..n_cols).map(|_| rand01()).collect();
            let label = ((row[0] > 0.5) != (row[n_cols - 1] > 0.4)) as u8 as f32;
            d.push_row(&row, label);
        }
        d
    }

    #[test]
    fn flat_matches_reference_walk_bit_for_bit() {
        let d = nonlinear(600, 4, 11);
        let m = GbdtConfig {
            n_trees: 25,
            subsample: 0.7,
            colsample: 1.0,
            ..Default::default()
        }
        .fit(&d);
        let flat = m.flat();
        for i in 0..d.n_rows() {
            let row = d.row(i);
            assert_eq!(
                flat.raw_score(row).to_bits(),
                m.raw_score_reference(row).to_bits(),
                "row {i}"
            );
        }
    }

    #[test]
    fn nan_goes_left_exactly_like_the_reference() {
        let d = nonlinear(400, 3, 23);
        let m = GbdtConfig {
            n_trees: 15,
            subsample: 0.9,
            colsample: 1.0,
            ..Default::default()
        }
        .fit(&d);
        let flat = m.flat();
        // NaN in every position, alone and mixed with extremes.
        let probes: Vec<Vec<f32>> = vec![
            vec![f32::NAN, 0.2, 0.9],
            vec![0.7, f32::NAN, 0.1],
            vec![0.3, 0.6, f32::NAN],
            vec![f32::NAN, f32::NAN, f32::NAN],
            vec![f32::NAN, f32::NEG_INFINITY, f32::INFINITY],
        ];
        for row in &probes {
            assert_eq!(
                flat.raw_score(row).to_bits(),
                m.raw_score_reference(row).to_bits(),
                "row {row:?}"
            );
        }
    }

    #[test]
    fn single_leaf_tree_compiles_to_a_leaf_root() {
        // min_samples_leaf too large to split: every tree is one leaf.
        let d = nonlinear(40, 2, 5);
        let m = GbdtConfig {
            n_trees: 3,
            subsample: 1.0,
            colsample: 1.0,
            min_samples_leaf: 100,
            ..Default::default()
        }
        .fit(&d);
        let flat = m.flat();
        assert_eq!(flat.n_trees(), 3);
        assert_eq!(flat.n_internal_nodes(), 0);
        assert_eq!(flat.n_leaves(), 3);
        for i in 0..d.n_rows() {
            assert_eq!(
                flat.raw_score(d.row(i)).to_bits(),
                m.raw_score_reference(d.row(i)).to_bits()
            );
        }
    }

    #[test]
    fn blocked_kernel_matches_single_row_bits_across_block_boundaries() {
        // 150 rows: two full 64-row blocks plus a 22-row tail.
        let d = nonlinear(150, 5, 31);
        let m = GbdtConfig {
            n_trees: 20,
            subsample: 0.8,
            colsample: 1.0,
            ..Default::default()
        }
        .fit(&d);
        let flat = m.flat();
        let blocked = flat.raw_scores_blocked(&d, 0..d.n_rows());
        for (i, b) in blocked.iter().enumerate() {
            assert_eq!(
                b.to_bits(),
                flat.raw_score(d.row(i)).to_bits(),
                "row {i} diverged across the block boundary"
            );
        }
        // A sub-range starts its own blocks but must score the same rows.
        let mid = flat.raw_scores_blocked(&d, 70..140);
        for (k, b) in mid.iter().enumerate() {
            assert_eq!(b.to_bits(), flat.raw_score(d.row(70 + k)).to_bits());
        }
    }

    #[test]
    fn counted_walks_return_the_same_bits_as_the_hot_path() {
        let d = nonlinear(100, 4, 47);
        let m = GbdtConfig {
            n_trees: 10,
            subsample: 0.9,
            colsample: 1.0,
            ..Default::default()
        }
        .fit(&d);
        let flat = m.flat();
        let mut counts = TraversalCounts::default();
        for i in 0..d.n_rows() {
            assert_eq!(
                flat.raw_score_counted(d.row(i), &mut counts).to_bits(),
                flat.raw_score(d.row(i)).to_bits()
            );
        }
        assert_eq!(counts.leaf_visits, (d.n_rows() * flat.n_trees()) as u64);
    }

    #[test]
    fn blocked_order_conserves_visits_and_cuts_cold_touches() {
        let d = nonlinear(256, 6, 53);
        let m = GbdtConfig {
            n_trees: 12,
            subsample: 0.8,
            colsample: 1.0,
            ..Default::default()
        }
        .fit(&d);
        let flat = m.flat();
        assert!(flat.n_trees() > 1, "cold-touch comparison needs >1 tree");

        let mut per_row = TraversalCounts::default();
        for i in 0..d.n_rows() {
            flat.raw_score_counted(d.row(i), &mut per_row);
        }
        let mut blocked = TraversalCounts::default();
        let mut out = vec![0f64; d.n_rows()];
        flat.raw_scores_blocked_counted(&d, 0..d.n_rows(), &mut out, &mut blocked);

        // Same descents, same total work…
        assert_eq!(per_row.node_visits, blocked.node_visits);
        assert_eq!(per_row.leaf_visits, blocked.leaf_visits);
        // …but the blocked order switches trees once per (tree, block)
        // instead of once per (tree, row).
        let n_blocks = d.n_rows().div_ceil(BLOCK_ROWS) as u64;
        let n_trees = flat.n_trees() as u64;
        assert_eq!(per_row.tree_switches, d.n_rows() as u64 * n_trees);
        assert_eq!(blocked.tree_switches, n_blocks * n_trees);
        assert!(
            blocked.cold_node_visits < per_row.cold_node_visits,
            "blocked {} !< per-row {}",
            blocked.cold_node_visits,
            per_row.cold_node_visits
        );
    }
}
