//! Pre-binned feature matrix for histogram-based tree growing.
//!
//! Each feature is quantised once into at most 256 equal-frequency buckets;
//! tree training then touches only `u8` bin codes (column-major for
//! cache-friendly histogram accumulation), while the fitted cut points let
//! trained trees carry raw `f32` thresholds for binning-free serving.

use crate::dataset::Dataset;
use titant_parallel::Pool;

/// Column-major quantised view of a dataset.
#[derive(Debug)]
pub struct BinnedMatrix {
    n_rows: usize,
    /// Per-feature sorted cut points; bin `b` covers `[cuts[b-1], cuts[b])`.
    cuts: Vec<Vec<f32>>,
    /// Column-major codes: feature `j` occupies `codes[j*n_rows..(j+1)*n_rows]`.
    codes: Vec<u8>,
}

impl BinnedMatrix {
    /// Quantise `data` into at most `max_bins` (≤ 256) buckets per feature,
    /// single-threaded. See [`BinnedMatrix::build_with_pool`].
    ///
    /// # Panics
    /// Panics if `max_bins` is not in `2..=256` or the dataset is empty.
    pub fn build(data: &Dataset, max_bins: usize) -> Self {
        Self::build_with_pool(data, max_bins, &Pool::serial())
    }

    /// Quantise `data` with the cut-point fits and code fills spread
    /// feature-wise over `pool`. Every feature is processed end-to-end by
    /// exactly one worker, so the result is identical for any thread count.
    ///
    /// # Panics
    /// Panics if `max_bins` is not in `2..=256` or the dataset is empty.
    pub fn build_with_pool(data: &Dataset, max_bins: usize, pool: &Pool) -> Self {
        assert!((2..=256).contains(&max_bins), "max_bins must be in 2..=256");
        assert!(data.n_rows() > 0, "cannot bin an empty dataset");
        let n_rows = data.n_rows();
        let n_cols = data.n_cols();
        let mut codes = vec![0u8; n_rows * n_cols];

        // Feature-parallel: worker chunks own contiguous column ranges of
        // the code matrix; cut vectors come back in chunk order and are
        // flattened back into feature order.
        let mut cuts: Vec<Vec<f32>> = Vec::with_capacity(n_cols);
        let chunk_cuts: Vec<Vec<Vec<f32>>> = {
            let codes_chunks: Vec<(usize, &mut [u8])> = {
                let mut out = Vec::new();
                let mut rest = &mut codes[..];
                for r in titant_parallel::chunk_ranges(n_cols, pool.threads()) {
                    let (chunk, tail) = rest.split_at_mut((r.end - r.start) * n_rows);
                    rest = tail;
                    out.push((r.start, chunk));
                }
                out
            };
            std::thread::scope(|scope| {
                let handles: Vec<_> = codes_chunks
                    .into_iter()
                    .map(|(first_col, chunk)| {
                        scope.spawn(move || {
                            chunk
                                .chunks_mut(n_rows)
                                .enumerate()
                                .map(|(k, dst)| fit_feature(data, first_col + k, max_bins, dst))
                                .collect::<Vec<Vec<f32>>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("binning worker panicked"))
                    .collect()
            })
        };
        for chunk in chunk_cuts {
            cuts.extend(chunk);
        }
        Self {
            n_rows,
            cuts,
            codes,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.cuts.len()
    }

    /// Number of occupied bins of feature `j` (= cut count + 1).
    #[inline]
    pub fn n_bins(&self, j: usize) -> usize {
        self.cuts[j].len() + 1
    }

    /// Column of bin codes for feature `j`.
    #[inline]
    pub fn column(&self, j: usize) -> &[u8] {
        &self.codes[j * self.n_rows..(j + 1) * self.n_rows]
    }

    /// Bin code of a single cell.
    #[inline]
    pub fn code(&self, row: u32, j: usize) -> u8 {
        self.codes[j * self.n_rows + row as usize]
    }

    /// The raw threshold corresponding to "bin < s": `value < threshold`.
    /// `s` must be in `1..n_bins(j)`.
    #[inline]
    pub fn threshold(&self, j: usize, s: usize) -> f32 {
        self.cuts[j][s - 1]
    }
}

/// Fit cut points for feature `j` and fill its code column.
fn fit_feature(data: &Dataset, j: usize, max_bins: usize, dst: &mut [u8]) -> Vec<f32> {
    let n_rows = data.n_rows();
    let mut col = data.column(j);
    // NaNs sort to the front deterministically and land in bin 0.
    col.sort_unstable_by(|a, b| a.total_cmp(b));
    // Greedy quantile cuts: close a bin once it holds >= n/max_bins
    // rows and the next value is distinct, so duplicate-heavy
    // columns never get empty bins.
    let mut c: Vec<f32> = Vec::with_capacity(max_bins - 1);
    let target = (n_rows / max_bins).max(1);
    let mut in_bin = 0usize;
    for i in 0..n_rows {
        in_bin += 1;
        if in_bin >= target
            && i + 1 < n_rows
            && col[i + 1] > col[i]
            && col[i + 1].is_finite()
            && c.len() < max_bins - 1
        {
            c.push(col[i + 1]);
            in_bin = 0;
        }
    }
    for (i, slot) in dst.iter_mut().enumerate() {
        *slot = bin_code(&c, data.row(i)[j]);
    }
    c
}

#[inline]
fn bin_code(cuts: &[f32], v: f32) -> u8 {
    if v.is_nan() {
        return 0;
    }
    cuts.partition_point(|&c| c <= v) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_one_col(values: &[f32]) -> Dataset {
        let mut d = Dataset::new(1);
        for &v in values {
            d.push_row(&[v], 0.0);
        }
        d
    }

    #[test]
    fn codes_are_monotone_in_value() {
        let values: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let d = dataset_one_col(&values);
        let m = BinnedMatrix::build(&d, 8);
        let col = m.column(0);
        for w in (0..100).collect::<Vec<_>>().windows(2) {
            assert!(col[w[0]] <= col[w[1]]);
        }
        assert_eq!(m.n_bins(0), 8);
    }

    #[test]
    fn threshold_is_consistent_with_codes() {
        let values: Vec<f32> = (0..50).map(|i| (i * 3) as f32).collect();
        let d = dataset_one_col(&values);
        let m = BinnedMatrix::build(&d, 5);
        for s in 1..m.n_bins(0) {
            let t = m.threshold(0, s);
            for (i, &v) in values.iter().enumerate() {
                let goes_left_by_code = (m.column(0)[i] as usize) < s;
                let goes_left_by_value = v < t;
                assert_eq!(goes_left_by_code, goes_left_by_value, "v={v}, s={s}, t={t}");
            }
        }
    }

    #[test]
    fn constant_column_has_one_bin() {
        let d = dataset_one_col(&[4.0; 20]);
        let m = BinnedMatrix::build(&d, 16);
        assert_eq!(m.n_bins(0), 1);
        assert!(m.column(0).iter().all(|&c| c == 0));
    }

    #[test]
    fn heavy_tail_still_separates_extremes() {
        let mut values = vec![1.0f32; 95];
        values.extend([1e6, 2e6, 3e6, 4e6, 5e6]);
        let d = dataset_one_col(&values);
        let m = BinnedMatrix::build(&d, 32);
        assert!(m.code(0, 0) < m.code(99, 0));
    }

    #[test]
    fn nan_lands_in_bin_zero() {
        let d = dataset_one_col(&[f32::NAN, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let m = BinnedMatrix::build(&d, 4);
        assert_eq!(m.code(0, 0), 0);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let mut d = Dataset::new(5);
        let mut state = 3u64;
        let mut rand01 = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f32 / (1u64 << 31) as f32
        };
        for _ in 0..500 {
            let row: Vec<f32> = (0..5).map(|_| rand01()).collect();
            d.push_row(&row, 0.0);
        }
        let serial = BinnedMatrix::build(&d, 16);
        for threads in [2usize, 3, 8] {
            let par = BinnedMatrix::build_with_pool(&d, 16, &Pool::new(threads));
            assert_eq!(par.codes, serial.codes, "threads={threads}");
            assert_eq!(par.cuts, serial.cuts, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "max_bins")]
    fn too_many_bins_rejected() {
        let d = dataset_one_col(&[1.0]);
        BinnedMatrix::build(&d, 257);
    }
}
