//! Histogram-grown regression trees — the weak learners inside GBDT.
//!
//! Each node accumulates per-bin `(Σg, Σh, count)` histograms over its rows
//! for the sampled features, then scans bins once to find the best split by
//! the second-order gain formula `G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)`.
//! Leaves output `−G/(H+λ)` (the Newton step).
//!
//! Split finding is **feature-parallel**: the sampled features are chunked
//! across the pool's workers, each worker accumulates histograms for its
//! features into a private scratch buffer, and the per-chunk bests are
//! reduced in chunk order. Row accumulation order inside one feature never
//! changes and the strictly-greater / first-wins reduction matches the
//! serial scan exactly, so the chosen split — and therefore the whole tree
//! — is bit-identical for any thread count. The row partition after a
//! split is likewise chunked contiguously and concatenated in chunk order,
//! preserving the serial row order.

use super::binned::BinnedMatrix;
use serde::{Deserialize, Serialize};
use titant_parallel::Pool;

/// Tree-growing hyperparameters shared across all boosting rounds.
#[derive(Debug, Clone)]
pub struct TreeParams {
    pub max_depth: usize,
    pub reg_lambda: f64,
    pub min_samples_leaf: usize,
}

/// Below this many `rows × features` histogram cells a node's split search
/// runs inline — scoped-thread spawn overhead would dominate.
const PAR_HIST_MIN_CELLS: usize = 16 * 1024;
/// Below this many rows the post-split partition runs inline.
const PAR_PARTITION_MIN_ROWS: usize = 8 * 1024;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum RegNode {
    Split {
        feature: u32,
        /// Serving predicate: `value < threshold` goes left.
        threshold: f32,
        /// Training predicate: `code < bin_split` goes left.
        bin_split: u8,
        left: u32,
        right: u32,
        /// Split gain, recorded for feature importance.
        gain: f32,
    },
    Leaf {
        value: f32,
    },
}

/// One regression tree of the ensemble.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegTree {
    nodes: Vec<RegNode>,
}

#[derive(Clone, Copy, Default)]
struct HistBin {
    g: f64,
    h: f64,
    n: u32,
}

struct BestSplit {
    feature: usize,
    bin_split: usize,
    gain: f64,
}

impl RegTree {
    /// Fit a tree on the sampled `rows` using only the sampled `features`,
    /// with split finding and row partitioning spread over `pool`.
    pub fn fit(
        matrix: &BinnedMatrix,
        rows: &[u32],
        features: &[u32],
        grad: &[f32],
        hess: &[f32],
        params: &TreeParams,
        pool: &Pool,
    ) -> Self {
        let mut nodes = Vec::new();
        let mut scratch_hist = vec![HistBin::default(); 256];
        grow(
            matrix,
            rows.to_vec(),
            features,
            grad,
            hess,
            params,
            0,
            &mut nodes,
            &mut scratch_hist,
            pool,
        );
        Self { nodes }
    }

    /// Evaluate on a raw feature row (serving path).
    pub fn predict_raw(&self, row: &[f32]) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                RegNode::Leaf { value } => return f64::from(*value),
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    let v = row[*feature as usize];
                    // NaN goes right (matches bin 0 < split being... NaN maps
                    // to bin 0 during training, which goes left). Keep the
                    // training-time behaviour: NaN left.
                    idx = if v.is_nan() || v < *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Evaluate row `i` of the binned training matrix (training-path update).
    pub fn predict_binned(&self, matrix: &BinnedMatrix, i: u32) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                RegNode::Leaf { value } => return f64::from(*value),
                RegNode::Split {
                    feature,
                    bin_split,
                    left,
                    right,
                    ..
                } => {
                    idx = if matrix.code(i, *feature as usize) < *bin_split {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Add each split's gain to `importance[feature]`.
    pub fn accumulate_importance(&self, importance: &mut [f64]) {
        for n in &self.nodes {
            if let RegNode::Split { feature, gain, .. } = n {
                importance[*feature as usize] += f64::from(*gain);
            }
        }
    }

    /// Node count (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The raw node storage, exposed to the crate so the compiled
    /// [`super::flat::FlatForest`] can lower the tree without re-walking it
    /// through the enum match. Nodes are in preorder (root first, each left
    /// subtree before its right sibling) — the order `grow` emits.
    pub(crate) fn nodes(&self) -> &[RegNode] {
        &self.nodes
    }
}

/// Best split over one contiguous chunk of the sorted feature sample.
/// `hist` is a ≥256-bin scratch buffer private to the caller.
#[allow(clippy::too_many_arguments)]
fn best_split_for(
    matrix: &BinnedMatrix,
    rows: &[u32],
    features: &[u32],
    grad: &[f32],
    hess: &[f32],
    params: &TreeParams,
    total: &HistBin,
    parent_obj: f64,
    hist: &mut [HistBin],
) -> Option<BestSplit> {
    let mut best: Option<BestSplit> = None;
    for &fu in features {
        let f = fu as usize;
        let k = matrix.n_bins(f);
        if k < 2 {
            continue;
        }
        for b in hist[..k].iter_mut() {
            *b = HistBin::default();
        }
        let col = matrix.column(f);
        for &r in rows {
            let code = col[r as usize] as usize;
            let b = &mut hist[code];
            b.g += f64::from(grad[r as usize]);
            b.h += f64::from(hess[r as usize]);
            b.n += 1;
        }
        // Prefix scan over bins: split "code < s".
        let mut left = HistBin::default();
        for s in 1..k {
            let prev = &hist[s - 1];
            left.g += prev.g;
            left.h += prev.h;
            left.n += prev.n;
            let right_n = total.n - left.n;
            if (left.n as usize) < params.min_samples_leaf
                || (right_n as usize) < params.min_samples_leaf
            {
                continue;
            }
            let right_g = total.g - left.g;
            let right_h = total.h - left.h;
            let gain = left.g * left.g / (left.h + params.reg_lambda)
                + right_g * right_g / (right_h + params.reg_lambda)
                - parent_obj;
            if gain > 1e-12 && best.as_ref().is_none_or(|b| gain > b.gain) {
                best = Some(BestSplit {
                    feature: f,
                    bin_split: s,
                    gain,
                });
            }
        }
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn grow(
    matrix: &BinnedMatrix,
    rows: Vec<u32>,
    features: &[u32],
    grad: &[f32],
    hess: &[f32],
    params: &TreeParams,
    depth: usize,
    nodes: &mut Vec<RegNode>,
    hist: &mut [HistBin],
    pool: &Pool,
) -> u32 {
    let idx = nodes.len() as u32;
    // Node totals accumulate serially in row order: a chunked reduction
    // would reassociate the f64 sums and break cross-thread determinism.
    let mut total = HistBin::default();
    for &r in &rows {
        total.g += f64::from(grad[r as usize]);
        total.h += f64::from(hess[r as usize]);
        total.n += 1;
    }
    let leaf_value = (-total.g / (total.h + params.reg_lambda)) as f32;

    if depth >= params.max_depth || rows.len() < 2 * params.min_samples_leaf {
        nodes.push(RegNode::Leaf { value: leaf_value });
        return idx;
    }

    let parent_obj = total.g * total.g / (total.h + params.reg_lambda);
    let best = if pool.threads() > 1 && rows.len() * features.len() >= PAR_HIST_MIN_CELLS {
        // Feature-parallel: each worker owns a contiguous chunk of the
        // sorted feature sample and a private histogram buffer; the
        // chunk-ordered reduction with strict `>` keeps the same
        // lowest-feature-index tie-break as the serial scan.
        pool.map_ranges(features.len(), |_, fr| {
            let mut scratch = vec![HistBin::default(); 256];
            best_split_for(
                matrix,
                &rows,
                &features[fr],
                grad,
                hess,
                params,
                &total,
                parent_obj,
                &mut scratch,
            )
        })
        .into_iter()
        .flatten()
        .fold(None::<BestSplit>, |best, cand| match best {
            Some(b) if cand.gain <= b.gain => Some(b),
            _ => Some(cand),
        })
    } else {
        best_split_for(
            matrix, &rows, features, grad, hess, params, &total, parent_obj, hist,
        )
    };

    let Some(best) = best else {
        nodes.push(RegNode::Leaf { value: leaf_value });
        return idx;
    };

    let col = matrix.column(best.feature);
    let goes_left = |r: u32| (col[r as usize] as usize) < best.bin_split;
    let (left_rows, right_rows): (Vec<u32>, Vec<u32>) =
        if pool.threads() > 1 && rows.len() >= PAR_PARTITION_MIN_ROWS {
            // Chunk-partition then concatenate in chunk order: identical to
            // the serial order-preserving partition.
            let parts: Vec<(Vec<u32>, Vec<u32>)> = pool.map_ranges(rows.len(), |_, r| {
                rows[r].iter().copied().partition(|&row| goes_left(row))
            });
            let mut left = Vec::with_capacity(rows.len());
            let mut right = Vec::new();
            for (l, r) in parts {
                left.extend_from_slice(&l);
                right.extend_from_slice(&r);
            }
            (left, right)
        } else {
            rows.into_iter().partition(|&row| goes_left(row))
        };

    nodes.push(RegNode::Leaf { value: 0.0 }); // placeholder
    let left = grow(
        matrix,
        left_rows,
        features,
        grad,
        hess,
        params,
        depth + 1,
        nodes,
        hist,
        pool,
    );
    let right = grow(
        matrix,
        right_rows,
        features,
        grad,
        hess,
        params,
        depth + 1,
        nodes,
        hist,
        pool,
    );
    nodes[idx as usize] = RegNode::Split {
        feature: best.feature as u32,
        threshold: matrix.threshold(best.feature, best.bin_split),
        bin_split: best.bin_split as u8,
        left,
        right,
        gain: best.gain as f32,
    };
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn step_dataset() -> (Dataset, Vec<f32>, Vec<f32>) {
        // Residuals of a step function: g = pred - y with pred = 0.
        let mut d = Dataset::new(1);
        let mut grad = Vec::new();
        let mut hess = Vec::new();
        for i in 0..100 {
            let x = i as f32;
            let y = if x >= 50.0 { 1.0 } else { 0.0 };
            d.push_row(&[x], y);
            grad.push(0.0 - y);
            hess.push(1.0);
        }
        (d, grad, hess)
    }

    #[test]
    fn single_split_recovers_step() {
        let (d, g, h) = step_dataset();
        let m = BinnedMatrix::build(&d, 64);
        let rows: Vec<u32> = (0..100).collect();
        let tree = RegTree::fit(
            &m,
            &rows,
            &[0],
            &g,
            &h,
            &TreeParams {
                max_depth: 1,
                reg_lambda: 0.0,
                min_samples_leaf: 1,
            },
            &Pool::serial(),
        );
        // Leaf values approximate -mean(g): 0 on the left, +1 on the right.
        assert!(tree.predict_raw(&[10.0]) < 0.1);
        assert!(tree.predict_raw(&[90.0]) > 0.9);
        assert_eq!(tree.node_count(), 3);
    }

    #[test]
    fn binned_and_raw_predictions_agree_on_training_rows() {
        let (d, g, h) = step_dataset();
        let m = BinnedMatrix::build(&d, 16);
        let rows: Vec<u32> = (0..100).collect();
        let tree = RegTree::fit(
            &m,
            &rows,
            &[0],
            &g,
            &h,
            &TreeParams {
                max_depth: 3,
                reg_lambda: 1.0,
                min_samples_leaf: 2,
            },
            &Pool::serial(),
        );
        for i in 0..100u32 {
            let raw = tree.predict_raw(d.row(i as usize));
            let binned = tree.predict_binned(&m, i);
            assert!(
                (raw - binned).abs() < 1e-12,
                "row {i}: raw {raw} != binned {binned}"
            );
        }
    }

    #[test]
    fn min_samples_leaf_blocks_tiny_splits() {
        let (d, g, h) = step_dataset();
        let m = BinnedMatrix::build(&d, 64);
        let rows: Vec<u32> = (0..100).collect();
        let tree = RegTree::fit(
            &m,
            &rows,
            &[0],
            &g,
            &h,
            &TreeParams {
                max_depth: 10,
                reg_lambda: 0.0,
                min_samples_leaf: 60, // no split can satisfy both sides
            },
            &Pool::serial(),
        );
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn importance_accumulates_on_split_feature() {
        let (d, g, h) = step_dataset();
        let m = BinnedMatrix::build(&d, 16);
        let rows: Vec<u32> = (0..100).collect();
        let tree = RegTree::fit(
            &m,
            &rows,
            &[0],
            &g,
            &h,
            &TreeParams {
                max_depth: 2,
                reg_lambda: 1.0,
                min_samples_leaf: 1,
            },
            &Pool::serial(),
        );
        let mut imp = vec![0.0];
        tree.accumulate_importance(&mut imp);
        assert!(imp[0] > 0.0);
    }

    #[test]
    fn pure_gradient_node_stays_leaf() {
        // All gradients equal -> no split improves the objective.
        let mut d = Dataset::new(1);
        for i in 0..20 {
            d.push_row(&[i as f32], 1.0);
        }
        let g = vec![-1.0f32; 20];
        let h = vec![1.0f32; 20];
        let m = BinnedMatrix::build(&d, 8);
        let rows: Vec<u32> = (0..20).collect();
        let tree = RegTree::fit(
            &m,
            &rows,
            &[0],
            &g,
            &h,
            &TreeParams {
                max_depth: 4,
                reg_lambda: 0.0,
                min_samples_leaf: 1,
            },
            &Pool::serial(),
        );
        assert_eq!(tree.node_count(), 1);
        assert!((tree.predict_raw(&[5.0]) - 1.0).abs() < 1e-6);
    }

    /// Multi-feature tree grown with 1 and 4 workers must be identical —
    /// the cross-thread determinism contract of the parallel split search
    /// (5000 rows × 6 features clears `PAR_HIST_MIN_CELLS`, so the root
    /// search runs feature-parallel; the ensemble-level test in
    /// `gbdt::tests` additionally covers the parallel partition).
    #[test]
    fn parallel_and_serial_trees_agree() {
        let mut d = Dataset::new(6);
        let mut state = 5u64;
        let mut rand01 = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f32 / (1u64 << 31) as f32
        };
        let mut grad = Vec::new();
        let n = 5000;
        for _ in 0..n {
            let row: Vec<f32> = (0..6).map(|_| rand01()).collect();
            let y = ((row[0] > 0.5) != (row[3] > 0.5)) as u8 as f32;
            grad.push(0.0 - y);
            d.push_row(&row, y);
        }
        let hess = vec![1.0f32; n];
        let m = BinnedMatrix::build(&d, 32);
        let rows: Vec<u32> = (0..n as u32).collect();
        let feats: Vec<u32> = (0..6).collect();
        let params = TreeParams {
            max_depth: 4,
            reg_lambda: 1.0,
            min_samples_leaf: 2,
        };
        let serial = RegTree::fit(&m, &rows, &feats, &grad, &hess, &params, &Pool::serial());
        let parallel = RegTree::fit(&m, &rows, &feats, &grad, &hess, &params, &Pool::new(4));
        assert_eq!(serial.node_count(), parallel.node_count());
        for i in 0..n as u32 {
            assert_eq!(
                serial.predict_binned(&m, i),
                parallel.predict_binned(&m, i),
                "row {i}"
            );
        }
    }
}
