//! # titant-models — detection methods
//!
//! From-scratch implementations of every detection method the TitAnt paper
//! evaluates (§3.3, Table 1):
//!
//! * rule-based: [`tree::Id3Config`] and [`tree::C50Config`] decision trees,
//! * anomaly detection: [`iforest::IsolationForest`],
//! * classification: [`linear::LogisticRegression`] (with equal-frequency
//!   [`discretize`]-ation, the paper's bin size 200) and
//!   [`gbdt::Gbdt`] gradient-boosted decision trees (400 trees, depth 3,
//!   row/feature subsampling 0.4).
//!
//! All models train on the dense [`Dataset`] type and expose a common
//! [`Classifier`] scoring trait so the experiment harness, the model server
//! and the pipeline can treat them uniformly. Models are `serde`-serialisable
//! — the model server ships them as versioned model files.

pub mod dataset;
pub mod discretize;
pub mod gbdt;
pub mod iforest;
pub mod linear;
pub mod traits;
pub mod tree;

pub use dataset::Dataset;
pub use discretize::{BinningStrategy, Discretizer};
pub use gbdt::flat::{FlatForest, TraversalCounts, BLOCK_ROWS};
pub use gbdt::{Gbdt, GbdtConfig, GbdtObjective, PredictEngine};
pub use iforest::{IsolationForest, IsolationForestConfig};
pub use linear::{LogisticRegression, LogisticRegressionConfig};
pub use traits::Classifier;
pub use tree::{C50Config, DecisionTree, Id3Config};
