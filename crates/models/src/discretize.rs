//! Feature discretization (binning).
//!
//! The paper reports that LR "is implemented with discretization
//! preprocessing which tremendously improves performance" with a bin size of
//! 200 (§5.2), and that the rule-based trees "cannot support continuous
//! values well" so data is discretized into bins (§5.1, citing Kotsiantis &
//! Kanellopoulos). Two strategies are provided:
//!
//! * **equal width** — fixed-size intervals over `[min, max]`; the coarse
//!   scheme the ID3 baseline uses,
//! * **equal frequency** — quantile cuts so every bin holds roughly the same
//!   number of training rows; robust to the heavy-tailed amount features.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// How bin boundaries are chosen during [`Discretizer::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinningStrategy {
    /// Fixed-width intervals spanning the observed range.
    EqualWidth,
    /// Quantile cuts: equal row counts per bin (duplicate cuts collapse).
    EqualFrequency,
}

/// Per-column bin boundaries fitted on training data.
///
/// A column with `k` cut points has `k + 1` bins; `bin_of` maps a value `v`
/// to the number of cut points `< v` (so values below the first cut map to
/// bin 0, above the last to bin `k`). Unseen out-of-range values therefore
/// clamp naturally to the edge bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Discretizer {
    /// `cuts[j]` is the sorted cut-point list of column `j`.
    cuts: Vec<Vec<f32>>,
}

impl Discretizer {
    /// Fit boundaries on every column of `data` with at most `bins` bins.
    ///
    /// # Panics
    /// Panics if `bins < 2` or the dataset is empty.
    pub fn fit(data: &Dataset, bins: usize, strategy: BinningStrategy) -> Self {
        Self::fit_per_column(data, &vec![bins; data.n_cols()], strategy)
    }

    /// Fit with a per-column bin budget — production discretization is
    /// tuned per feature family (the paper reports sweeping bin sizes and
    /// keeping the best).
    ///
    /// # Panics
    /// Panics if any budget is `< 2`, the budget count mismatches the
    /// column count, or the dataset is empty.
    pub fn fit_per_column(
        data: &Dataset,
        bins_per_column: &[usize],
        strategy: BinningStrategy,
    ) -> Self {
        assert_eq!(
            bins_per_column.len(),
            data.n_cols(),
            "one bin budget per column"
        );
        assert!(
            bins_per_column.iter().all(|&b| b >= 2),
            "need at least two bins"
        );
        assert!(data.n_rows() > 0, "cannot fit a discretizer on no rows");
        let cuts = (0..data.n_cols())
            .map(|j| {
                let bins = bins_per_column[j];
                let mut col = data.column(j);
                col.retain(|v| v.is_finite());
                if col.is_empty() {
                    return Vec::new();
                }
                match strategy {
                    BinningStrategy::EqualWidth => equal_width_cuts(&col, bins),
                    BinningStrategy::EqualFrequency => equal_frequency_cuts(col, bins),
                }
            })
            .collect();
        Self { cuts }
    }

    /// Number of columns the discretizer was fitted on.
    pub fn n_cols(&self) -> usize {
        self.cuts.len()
    }

    /// Number of bins for column `j`.
    pub fn n_bins(&self, j: usize) -> usize {
        self.cuts[j].len() + 1
    }

    /// Total number of bins across all columns (the one-hot width for LR).
    pub fn total_bins(&self) -> usize {
        self.cuts.iter().map(|c| c.len() + 1).sum()
    }

    /// Bin index of `value` in column `j`.
    #[inline]
    pub fn bin_of(&self, j: usize, value: f32) -> usize {
        let cuts = &self.cuts[j];
        // partition_point returns the count of cuts <= value; NaN maps to 0.
        if value.is_nan() {
            return 0;
        }
        cuts.partition_point(|&c| c <= value)
    }

    /// Offset of column `j`'s bin 0 within the flattened one-hot space.
    pub fn onehot_offset(&self, j: usize) -> usize {
        self.cuts[..j].iter().map(|c| c.len() + 1).sum()
    }

    /// Map a raw feature row to flat one-hot indices (one per column).
    pub fn onehot_indices(&self, row: &[f32], out: &mut Vec<u32>) {
        debug_assert_eq!(row.len(), self.cuts.len());
        out.clear();
        let mut offset = 0usize;
        for (j, &v) in row.iter().enumerate() {
            out.push((offset + self.bin_of(j, v)) as u32);
            offset += self.cuts[j].len() + 1;
        }
    }

    /// Replace every value with its bin index (as `f32`), keeping labels.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        assert_eq!(data.n_cols(), self.cuts.len(), "column count mismatch");
        let mut values = Vec::with_capacity(data.n_rows() * data.n_cols());
        for i in 0..data.n_rows() {
            for (j, &v) in data.row(i).iter().enumerate() {
                values.push(self.bin_of(j, v) as f32);
            }
        }
        Dataset::from_parts(data.n_cols(), values, data.labels().to_vec())
    }
}

fn equal_width_cuts(col: &[f32], bins: usize) -> Vec<f32> {
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &v in col {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo >= hi {
        return Vec::new(); // constant column: single bin
    }
    let width = (hi as f64 - lo as f64) / bins as f64;
    (1..bins)
        .map(|b| (lo as f64 + width * b as f64) as f32)
        .collect()
}

/// Greedy quantile cuts over sorted values: close a bin once it holds at
/// least `n / bins` rows *and* the next value is distinct, so duplicates
/// never produce empty bins (the LightGBM-style refinement).
fn equal_frequency_cuts(mut col: Vec<f32>, bins: usize) -> Vec<f32> {
    col.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = col.len();
    let target = (n / bins).max(1);
    let mut cuts = Vec::with_capacity(bins - 1);
    let mut in_bin = 0usize;
    for i in 0..n {
        in_bin += 1;
        if in_bin >= target && i + 1 < n && col[i + 1] > col[i] && cuts.len() < bins - 1 {
            cuts.push(col[i + 1]);
            in_bin = 0;
        }
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_of(cols: Vec<Vec<f32>>) -> Dataset {
        let n_rows = cols[0].len();
        let n_cols = cols.len();
        let mut values = Vec::with_capacity(n_rows * n_cols);
        for i in 0..n_rows {
            for c in &cols {
                values.push(c[i]);
            }
        }
        Dataset::from_parts(n_cols, values, vec![0.0; n_rows])
    }

    #[test]
    fn equal_width_splits_range_evenly() {
        let d = dataset_of(vec![(0..10).map(|v| v as f32).collect()]);
        let disc = Discretizer::fit(&d, 3, BinningStrategy::EqualWidth);
        assert_eq!(disc.n_bins(0), 3);
        assert_eq!(disc.bin_of(0, 0.0), 0);
        assert_eq!(disc.bin_of(0, 4.0), 1);
        assert_eq!(disc.bin_of(0, 9.0), 2);
        // Out-of-range clamps.
        assert_eq!(disc.bin_of(0, -100.0), 0);
        assert_eq!(disc.bin_of(0, 100.0), 2);
    }

    #[test]
    fn equal_frequency_balances_counts() {
        // Heavy tail: most mass at small values.
        let mut col: Vec<f32> = vec![1.0; 90];
        col.extend((0..10).map(|v| 100.0 + v as f32));
        let d = dataset_of(vec![col.clone()]);
        let disc = Discretizer::fit(&d, 4, BinningStrategy::EqualFrequency);
        // Duplicate quantiles collapse; at least the tail is separated.
        assert!(disc.n_bins(0) >= 2);
        assert_ne!(disc.bin_of(0, 1.0), disc.bin_of(0, 109.0));
    }

    #[test]
    fn constant_column_gets_single_bin() {
        let d = dataset_of(vec![vec![5.0; 8]]);
        for s in [BinningStrategy::EqualWidth, BinningStrategy::EqualFrequency] {
            let disc = Discretizer::fit(&d, 4, s);
            assert_eq!(disc.n_bins(0), 1);
            assert_eq!(disc.bin_of(0, 5.0), 0);
            assert_eq!(disc.bin_of(0, -1.0), 0);
        }
    }

    #[test]
    fn transform_produces_bin_indices() {
        let d = dataset_of(vec![vec![0.0, 5.0, 10.0], vec![1.0, 1.0, 2.0]]);
        let disc = Discretizer::fit(&d, 2, BinningStrategy::EqualWidth);
        let t = disc.transform(&d);
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.row(0)[0], 0.0);
        assert_eq!(t.row(2)[0], 1.0);
    }

    #[test]
    fn onehot_indices_are_disjoint_across_columns() {
        let d = dataset_of(vec![vec![0.0, 10.0], vec![0.0, 10.0]]);
        let disc = Discretizer::fit(&d, 2, BinningStrategy::EqualWidth);
        let mut idx = Vec::new();
        disc.onehot_indices(&[0.0, 10.0], &mut idx);
        assert_eq!(idx.len(), 2);
        assert!(idx[1] >= disc.onehot_offset(1) as u32);
        assert!(idx[0] < disc.onehot_offset(1) as u32);
        assert!((disc.total_bins() as u32) > idx[1]);
    }

    #[test]
    fn nan_maps_to_bin_zero() {
        let d = dataset_of(vec![vec![0.0, 1.0, 2.0]]);
        let disc = Discretizer::fit(&d, 3, BinningStrategy::EqualFrequency);
        assert_eq!(disc.bin_of(0, f32::NAN), 0);
    }

    #[test]
    #[should_panic(expected = "at least two bins")]
    fn one_bin_is_rejected() {
        let d = dataset_of(vec![vec![0.0, 1.0]]);
        Discretizer::fit(&d, 1, BinningStrategy::EqualWidth);
    }
}
