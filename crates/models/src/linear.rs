//! Logistic Regression with discretization preprocessing (paper §3.3, §5.1).
//!
//! The paper's LR setting: equal-frequency discretization with bin size 200
//! ("which tremendously improves performance"), L1 regularisation with
//! weight 0.1, and 300 iterations as the stopping criterion. Internally the
//! model one-hot encodes every feature's bin, so each raw row becomes a
//! sparse vector with exactly `n_cols` active indicator features — training
//! is sparse SGD with per-update soft-thresholding for the L1 term.

use crate::dataset::Dataset;
use crate::discretize::{BinningStrategy, Discretizer};
use crate::traits::Classifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training parameters; defaults mirror the paper's reported setting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegressionConfig {
    /// Bins per feature for the internal discretizer (paper: 200).
    pub bins: usize,
    /// Optional per-column bin budgets overriding `bins` (tuned
    /// discretization per feature family; `None` = uniform `bins`).
    pub bins_per_column: Option<Vec<usize>>,
    /// Binning strategy (equal frequency is robust to heavy tails).
    pub strategy: BinningStrategy,
    /// Per-weight L1 penalty λ. The paper reports an L1 "weight" of 0.1
    /// under its own normalisation; here λ multiplies each one-hot weight
    /// directly (objective `mean_logloss + λ·Σ|w|/n`), so the shrinkage per
    /// weight stays constant as feature columns are added.
    pub l1: f64,
    /// Upper bound on training epochs (paper: 300 iterations).
    pub max_epochs: usize,
    /// Adagrad master step size.
    pub learning_rate: f64,
    /// Early-stop when relative log-loss improvement falls below this.
    pub tol: f64,
    /// Shuffle / init seed.
    pub seed: u64,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        Self {
            bins: 200,
            bins_per_column: None,
            strategy: BinningStrategy::EqualFrequency,
            l1: 1e-3,
            max_epochs: 300,
            learning_rate: 0.1,
            tol: 1e-5,
            seed: 0x10_6157,
        }
    }
}

/// A trained discretized logistic-regression model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    discretizer: Discretizer,
    /// One weight per (feature, bin) indicator.
    weights: Vec<f32>,
    bias: f32,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegressionConfig {
    /// Train on raw (continuous or mixed) features; discretization happens
    /// inside and ships with the model.
    ///
    /// # Panics
    /// Panics on an empty or unlabelled dataset.
    pub fn fit(&self, data: &Dataset) -> LogisticRegression {
        assert!(data.is_labeled(), "LR needs labels");
        assert!(data.n_rows() > 1, "LR needs at least two rows");
        let discretizer = match &self.bins_per_column {
            Some(budgets) => Discretizer::fit_per_column(data, budgets, self.strategy),
            None => Discretizer::fit(data, self.bins, self.strategy),
        };
        let d = discretizer.total_bins();
        let n = data.n_rows();

        // Pre-encode rows to flat one-hot index lists: row i occupies
        // indices[i*n_cols .. (i+1)*n_cols].
        let n_cols = data.n_cols();
        let mut indices = Vec::with_capacity(n * n_cols);
        let mut scratch = Vec::with_capacity(n_cols);
        for i in 0..n {
            discretizer.onehot_indices(data.row(i), &mut scratch);
            indices.extend_from_slice(&scratch);
        }

        let mut weights = vec![0f64; d];
        let mut bias = {
            // Initialise bias at the log-odds of the base rate: crucial for
            // unbalanced labels, otherwise early epochs waste time.
            let p = data.positive_rate().clamp(1e-6, 1.0 - 1e-6);
            (p / (1.0 - p)).ln()
        };

        let lambda = self.l1;
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut prev_loss = f64::INFINITY;
        // Adagrad accumulators: per-coordinate adaptive steps suit sparse
        // one-hot features (rare bins keep large steps, frequent bins
        // anneal) far better than a global schedule.
        let mut acc = vec![0f64; d];
        let mut acc_bias = 0f64;
        const EPS: f64 = 1e-8;

        for _epoch in 0..self.max_epochs {
            order.shuffle(&mut rng);
            let lr = self.learning_rate;
            let mut loss_sum = 0.0;
            for &i in &order {
                let i = i as usize;
                let row_idx = &indices[i * n_cols..(i + 1) * n_cols];
                let mut z = bias;
                for &j in row_idx {
                    z += weights[j as usize];
                }
                let p = sigmoid(z);
                let y = f64::from(data.label(i));
                loss_sum -= if y > 0.5 {
                    p.max(1e-12).ln()
                } else {
                    (1.0 - p).max(1e-12).ln()
                };
                let g = p - y;
                acc_bias += g * g;
                bias -= lr * g / (acc_bias.sqrt() + EPS);
                for &j in row_idx {
                    let j = j as usize;
                    acc[j] += g * g;
                    let step = lr / (acc[j].sqrt() + EPS);
                    let w = &mut weights[j];
                    *w -= step * g;
                    // Soft-threshold the touched weight (truncated gradient).
                    *w = w.signum() * (w.abs() - step * lambda).max(0.0);
                }
            }
            let loss = loss_sum / n as f64;
            if prev_loss - loss < self.tol * prev_loss.abs().max(1e-12) {
                break;
            }
            prev_loss = loss;
        }

        LogisticRegression {
            discretizer,
            weights: weights.into_iter().map(|w| w as f32).collect(),
            bias: bias as f32,
        }
    }
}

impl LogisticRegression {
    /// Fraction of exactly-zero weights (the L1 sparsity effect).
    pub fn sparsity(&self) -> f64 {
        if self.weights.is_empty() {
            return 0.0;
        }
        self.weights.iter().filter(|&&w| w == 0.0).count() as f64 / self.weights.len() as f64
    }

    /// Number of one-hot parameters.
    pub fn n_parameters(&self) -> usize {
        self.weights.len() + 1
    }
}

impl Classifier for LogisticRegression {
    fn predict_proba(&self, features: &[f32]) -> f32 {
        let mut z = f64::from(self.bias);
        let mut offset = 0usize;
        for (j, &v) in features.iter().enumerate() {
            let bin = self.discretizer.bin_of(j, v);
            z += f64::from(self.weights[offset + bin]);
            offset += self.discretizer.n_bins(j);
        }
        sigmoid(z) as f32
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable-in-bins data: label = 1 iff f0 > 5.
    fn step_data(n: usize) -> Dataset {
        let mut d = Dataset::new(2);
        let mut state = 7u64;
        let mut rand01 = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f32 / (1u64 << 31) as f32
        };
        for _ in 0..n {
            let x = rand01() * 10.0;
            let noise = rand01() * 10.0;
            d.push_row(&[x, noise], if x > 5.0 { 1.0 } else { 0.0 });
        }
        d
    }

    fn quick_cfg() -> LogisticRegressionConfig {
        LogisticRegressionConfig {
            bins: 10,
            max_epochs: 60,
            ..Default::default()
        }
    }

    #[test]
    fn learns_a_threshold_rule() {
        let d = step_data(500);
        let m = quick_cfg().fit(&d);
        assert!(m.predict_proba(&[9.0, 5.0]) > 0.8);
        assert!(m.predict_proba(&[1.0, 5.0]) < 0.2);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let d = step_data(200);
        let m = quick_cfg().fit(&d);
        for i in 0..d.n_rows() {
            let p = m.predict_proba(d.row(i));
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn strong_l1_zeroes_noise_weights() {
        let d = step_data(500);
        let weak = LogisticRegressionConfig {
            l1: 0.0,
            ..quick_cfg()
        }
        .fit(&d);
        let strong = LogisticRegressionConfig {
            l1: 50.0,
            ..quick_cfg()
        }
        .fit(&d);
        assert!(
            strong.sparsity() > weak.sparsity(),
            "strong {} vs weak {}",
            strong.sparsity(),
            weak.sparsity()
        );
    }

    #[test]
    fn bias_init_matches_base_rate_on_degenerate_data() {
        // All-negative labels: prediction should stay near 0 everywhere.
        let mut d = Dataset::new(1);
        for i in 0..50 {
            d.push_row(&[i as f32], 0.0);
        }
        let m = LogisticRegressionConfig {
            bins: 5,
            max_epochs: 5,
            ..Default::default()
        }
        .fit(&d);
        assert!(m.predict_proba(&[25.0]) < 0.05);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = step_data(100);
        let m1 = quick_cfg().fit(&d);
        let m2 = quick_cfg().fit(&d);
        assert_eq!(m1.predict_proba(d.row(0)), m2.predict_proba(d.row(0)));
    }

    #[test]
    fn unbalanced_data_ranks_positives_higher() {
        // 5% positive rate, threshold at f0 > 9.5.
        let mut d = Dataset::new(1);
        let mut state = 99u64;
        let mut rand01 = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f32 / (1u64 << 31) as f32
        };
        for _ in 0..1000 {
            let x = rand01() * 10.0;
            d.push_row(&[x], if x > 9.5 { 1.0 } else { 0.0 });
        }
        let m = quick_cfg().fit(&d);
        assert!(m.predict_proba(&[9.9]) > m.predict_proba(&[3.0]));
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }
}
