//! The common scoring interface all detection methods implement.

use crate::dataset::Dataset;

/// A trained binary scorer. Higher scores mean "more likely fraud".
///
/// Classification models return calibrated-ish probabilities in `[0, 1]`;
/// the isolation forest returns its anomaly score in `[0, 1]`. Either way
/// ranking metrics (rec@top-q%) and threshold-tuned F1 apply uniformly.
pub trait Classifier: Send + Sync {
    /// Score one feature row.
    fn predict_proba(&self, features: &[f32]) -> f32;

    /// Score every row of a dataset.
    fn predict_batch(&self, data: &Dataset) -> Vec<f32> {
        (0..data.n_rows())
            .map(|i| self.predict_proba(data.row(i)))
            .collect()
    }

    /// Short human-readable model name for experiment tables.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ConstModel(f32);
    impl Classifier for ConstModel {
        fn predict_proba(&self, _features: &[f32]) -> f32 {
            self.0
        }
        fn name(&self) -> &'static str {
            "const"
        }
    }

    #[test]
    fn batch_default_uses_predict_proba() {
        let mut d = Dataset::new(1);
        d.push_row(&[0.0], 0.0);
        d.push_row(&[1.0], 1.0);
        let m = ConstModel(0.7);
        assert_eq!(m.predict_batch(&d), vec![0.7, 0.7]);
        assert_eq!(m.name(), "const");
    }
}
