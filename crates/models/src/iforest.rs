//! Isolation Forest anomaly detection (Liu, Ting & Zhou 2008; paper §3.3).
//!
//! The paper's configuration: 100 trees over the raw (continuous) basic
//! features, no labels. Each tree isolates points with random axis-aligned
//! splits on a subsample; anomalous points separate in few splits, so the
//! anomaly score is `2^(-E[path length] / c(psi))` where `c(psi)` is the
//! expected path length of an unsuccessful BST search.
//!
//! As the paper observes (Figure 9 discussion), outliers in transaction data
//! are "probably not caused by fraud cases but for other reasons" — the
//! forest scores in `[0, 1]` plug into the same evaluation as classifiers,
//! reproducing its weak ≈10 % F1.

use crate::dataset::Dataset;
use crate::traits::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Isolation-forest training parameters; defaults mirror the original paper
/// and TitAnt's setting of 100 trees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IsolationForestConfig {
    /// Number of isolation trees (paper: 100).
    pub n_trees: usize,
    /// Subsample size per tree (original iForest default 256).
    pub subsample: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IsolationForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 100,
            subsample: 256,
            seed: 0x1f0_7e57,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum ITreeNode {
    /// Internal split: go left when `value < threshold`.
    Split {
        feature: u32,
        threshold: f32,
        left: u32,
        right: u32,
    },
    /// External node holding `n` training points; path length is adjusted
    /// by `c(n)` for unsplit groups.
    Leaf { n: u32 },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ITree {
    nodes: Vec<ITreeNode>,
}

impl ITree {
    /// Path length of a point, including the `c(n)` adjustment at leaves.
    fn path_length(&self, row: &[f32]) -> f64 {
        let mut idx = 0u32;
        let mut depth = 0.0f64;
        loop {
            match &self.nodes[idx as usize] {
                ITreeNode::Leaf { n } => return depth + c_factor(*n as usize),
                ITreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    depth += 1.0;
                    idx = if row[*feature as usize] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Expected path length of an unsuccessful search in a BST of `n` nodes —
/// the normalisation constant `c(n)` from the iForest paper.
pub fn c_factor(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let nf = n as f64;
    // Harmonic number via the asymptotic expansion H(k) ~ ln(k) + gamma.
    let h = (nf - 1.0).ln() + 0.577_215_664_901_532_9;
    2.0 * h - 2.0 * (nf - 1.0) / nf
}

/// A trained isolation forest. `predict_proba` returns the anomaly score in
/// `[0, 1]` (≈0.5 for average points, →1 for isolated points).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IsolationForest {
    trees: Vec<ITree>,
    /// Normalisation constant for the training subsample size.
    c_psi: f64,
}

impl IsolationForestConfig {
    /// Fit the forest on (typically unlabelled) data.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(&self, data: &Dataset) -> IsolationForest {
        assert!(data.n_rows() > 0, "isolation forest needs rows");
        assert!(self.n_trees > 0, "need at least one tree");
        let psi = self.subsample.min(data.n_rows()).max(2);
        let height_limit = (psi as f64).log2().ceil() as usize;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let trees = (0..self.n_trees)
            .map(|_| {
                // Sample psi distinct-ish rows (with replacement is fine for
                // large data; for tiny data clamp to available rows).
                let rows: Vec<u32> = (0..psi)
                    .map(|_| rng.gen_range(0..data.n_rows()) as u32)
                    .collect();
                let mut nodes = Vec::new();
                build(data, &mut rng, &mut nodes, rows, 0, height_limit);
                ITree { nodes }
            })
            .collect();
        IsolationForest {
            trees,
            c_psi: c_factor(psi),
        }
    }
}

fn build(
    data: &Dataset,
    rng: &mut StdRng,
    nodes: &mut Vec<ITreeNode>,
    rows: Vec<u32>,
    depth: usize,
    height_limit: usize,
) -> u32 {
    let idx = nodes.len() as u32;
    if depth >= height_limit || rows.len() <= 1 {
        nodes.push(ITreeNode::Leaf {
            n: rows.len() as u32,
        });
        return idx;
    }
    // Try a few features to find one with spread; constant subsets leaf out.
    let n_cols = data.n_cols();
    let mut chosen: Option<(usize, f32, f32)> = None;
    for _ in 0..n_cols.min(16) {
        let f = rng.gen_range(0..n_cols);
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &r in &rows {
            let v = data.row(r as usize)[f];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi > lo {
            chosen = Some((f, lo, hi));
            break;
        }
    }
    let Some((feature, lo, hi)) = chosen else {
        nodes.push(ITreeNode::Leaf {
            n: rows.len() as u32,
        });
        return idx;
    };
    let threshold = rng.gen_range(lo..hi);
    let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = rows
        .into_iter()
        .partition(|&r| data.row(r as usize)[feature] < threshold);

    nodes.push(ITreeNode::Leaf { n: 0 }); // placeholder, replaced below
    let left = build(data, rng, nodes, left_rows, depth + 1, height_limit);
    let right = build(data, rng, nodes, right_rows, depth + 1, height_limit);
    nodes[idx as usize] = ITreeNode::Split {
        feature: feature as u32,
        threshold,
        left,
        right,
    };
    idx
}

impl Classifier for IsolationForest {
    fn predict_proba(&self, features: &[f32]) -> f32 {
        let mean_path: f64 = self
            .trees
            .iter()
            .map(|t| t.path_length(features))
            .sum::<f64>()
            / self.trees.len() as f64;
        if self.c_psi <= 0.0 {
            return 0.5;
        }
        2f64.powf(-mean_path / self.c_psi) as f32
    }

    fn name(&self) -> &'static str {
        "IF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tight cluster at origin plus one far outlier.
    fn cluster_with_outlier() -> Dataset {
        let mut d = Dataset::new(2);
        let mut state = 42u64;
        let mut noise = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 1000) as f32 / 1000.0 - 0.5
        };
        for _ in 0..300 {
            d.push_unlabeled_row(&[noise(), noise()]);
        }
        d.push_unlabeled_row(&[25.0, -25.0]);
        d
    }

    #[test]
    fn outlier_scores_higher_than_inliers() {
        let d = cluster_with_outlier();
        let forest = IsolationForestConfig::default().fit(&d);
        let outlier = forest.predict_proba(&[25.0, -25.0]);
        let inlier = forest.predict_proba(&[0.0, 0.0]);
        assert!(
            outlier > inlier + 0.1,
            "outlier {outlier} vs inlier {inlier}"
        );
        assert!(outlier > 0.6);
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let d = cluster_with_outlier();
        let forest = IsolationForestConfig {
            n_trees: 20,
            ..Default::default()
        }
        .fit(&d);
        for i in 0..d.n_rows() {
            let s = forest.predict_proba(d.row(i));
            assert!((0.0..=1.0).contains(&s), "score {s} out of range");
        }
    }

    #[test]
    fn c_factor_matches_reference_values() {
        // Reference values from the iForest paper's formula.
        assert_eq!(c_factor(1), 0.0);
        assert!((c_factor(2) - 0.1544).abs() < 0.02);
        assert!((c_factor(256) - 10.24).abs() < 0.2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = cluster_with_outlier();
        let cfg = IsolationForestConfig {
            n_trees: 10,
            seed: 5,
            ..Default::default()
        };
        let f1 = cfg.fit(&d);
        let f2 = cfg.fit(&d);
        assert_eq!(f1.predict_proba(&[1.0, 1.0]), f2.predict_proba(&[1.0, 1.0]));
    }

    #[test]
    fn constant_data_scores_uniformly() {
        let mut d = Dataset::new(1);
        for _ in 0..50 {
            d.push_unlabeled_row(&[3.0]);
        }
        let forest = IsolationForestConfig {
            n_trees: 10,
            ..Default::default()
        }
        .fit(&d);
        let a = forest.predict_proba(&[3.0]);
        let b = forest.predict_proba(&[3.0]);
        assert_eq!(a, b);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn name_is_if() {
        let d = cluster_with_outlier();
        let f = IsolationForestConfig {
            n_trees: 1,
            ..Default::default()
        }
        .fit(&d);
        assert_eq!(f.name(), "IF");
    }
}
