//! Rule-based detection: ID3 and C5.0-style decision trees (paper §3.3).
//!
//! Both trees consume **discretized** data — every feature value must be a
//! small non-negative integer bin index (see [`crate::Discretizer`]); the
//! paper notes that "rule-based ID3 and C5.0 cannot support continuous
//! values well, we discretize the data into different bins".
//!
//! * [`Id3Config`] reproduces Quinlan's original Iterative Dichotomiser 3:
//!   multiway splits chosen by **information gain**, no pruning, each
//!   feature used at most once per path.
//! * [`C50Config`] reproduces the C4.5/C5.0 family improvements the paper
//!   credits for its edge over ID3: the **gain ratio** criterion, a
//!   minimum-cases-per-branch constraint, and **pessimistic error pruning**
//!   with the classic CF = 0.25 confidence factor.
//!
//! Trained trees share the flat [`DecisionTree`] representation: nodes in a
//! vector, multiway children indexed by bin value, every node carrying its
//! class prior so unseen bins fall back gracefully.

use crate::dataset::Dataset;
use crate::traits::Classifier;
use serde::{Deserialize, Serialize};

/// Sentinel for "no child" / "leaf node".
const NONE: u32 = u32::MAX;

/// Cap on distinct bin values per feature; guards against accidentally
/// feeding raw continuous data.
const MAX_BINS: usize = 4096;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct TreeNode {
    /// Split feature, or `NONE` for a leaf.
    feature: u32,
    /// Child node index per bin value; `NONE` falls back to this node's prior.
    children: Vec<u32>,
    /// Positive-class fraction of the training rows that reached this node
    /// (Laplace-smoothed).
    prob: f32,
    /// Number of training rows at this node.
    n: u32,
}

/// A trained multiway decision tree (produced by [`Id3Config::fit`] or
/// [`C50Config::fit`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<TreeNode>,
    algorithm: Algorithm,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Algorithm {
    Id3,
    C50,
}

impl DecisionTree {
    /// Number of nodes (internal + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.feature == NONE).count()
    }

    /// Maximum depth (root = 0). Walks the stored structure.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[TreeNode], idx: u32, d: usize) -> usize {
            let node = &nodes[idx as usize];
            if node.feature == NONE {
                return d;
            }
            node.children
                .iter()
                .filter(|&&c| c != NONE)
                .map(|&c| walk(nodes, c, d + 1))
                .max()
                .unwrap_or(d)
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0, 0)
        }
    }
}

impl Classifier for DecisionTree {
    fn predict_proba(&self, features: &[f32]) -> f32 {
        let mut idx = 0u32;
        loop {
            let node = &self.nodes[idx as usize];
            if node.feature == NONE {
                return node.prob;
            }
            let bin = features[node.feature as usize];
            let bin = if bin.is_finite() && bin >= 0.0 {
                bin as usize
            } else {
                return node.prob;
            };
            match node.children.get(bin) {
                Some(&child) if child != NONE => idx = child,
                _ => return node.prob,
            }
        }
    }

    fn name(&self) -> &'static str {
        match self.algorithm {
            Algorithm::Id3 => "ID3",
            Algorithm::C50 => "C5.0",
        }
    }
}

/// Configuration for training an ID3 tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Id3Config {
    /// Hard depth cap (ID3 historically has none; the cap bounds worst-case
    /// blowup on noisy data). Default 25.
    pub max_depth: usize,
    /// Minimum information gain (nats) required to split. Default 1e-7 —
    /// effectively "any positive gain", the classic overfitting behaviour.
    pub min_gain: f64,
}

impl Default for Id3Config {
    fn default() -> Self {
        Self {
            max_depth: 25,
            min_gain: 1e-7,
        }
    }
}

impl Id3Config {
    /// Train on a discretized labelled dataset.
    pub fn fit(&self, data: &Dataset) -> DecisionTree {
        let ctx = TrainContext::new(data);
        let mut nodes = Vec::new();
        let rows: Vec<u32> = (0..data.n_rows() as u32).collect();
        grow(
            &ctx,
            &mut nodes,
            rows,
            &mut vec![false; data.n_cols()],
            0,
            &GrowParams {
                algorithm: Algorithm::Id3,
                max_depth: self.max_depth,
                min_gain: self.min_gain,
                min_cases: 1,
            },
        );
        DecisionTree {
            nodes,
            algorithm: Algorithm::Id3,
        }
    }
}

/// Configuration for training a C5.0-style tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct C50Config {
    /// Hard depth cap. Default 25.
    pub max_depth: usize,
    /// Minimum training cases in at least two branches of a split
    /// (C4.5's `-m`). Default 8.
    pub min_cases: usize,
    /// Confidence factor for pessimistic pruning (C5.0's `-c`, default 0.25).
    pub cf: f64,
}

impl Default for C50Config {
    fn default() -> Self {
        Self {
            max_depth: 25,
            min_cases: 8,
            cf: 0.25,
        }
    }
}

impl C50Config {
    /// Train on a discretized labelled dataset, then prune pessimistically.
    pub fn fit(&self, data: &Dataset) -> DecisionTree {
        let ctx = TrainContext::new(data);
        let mut nodes = Vec::new();
        let rows: Vec<u32> = (0..data.n_rows() as u32).collect();
        grow(
            &ctx,
            &mut nodes,
            rows,
            &mut vec![false; data.n_cols()],
            0,
            &GrowParams {
                algorithm: Algorithm::C50,
                max_depth: self.max_depth,
                min_gain: 1e-7,
                min_cases: self.min_cases,
            },
        );
        let mut tree = DecisionTree {
            nodes,
            algorithm: Algorithm::C50,
        };
        if !tree.nodes.is_empty() {
            prune(&mut tree.nodes, 0, self.cf);
        }
        tree
    }
}

struct GrowParams {
    algorithm: Algorithm,
    max_depth: usize,
    min_gain: f64,
    min_cases: usize,
}

/// Immutable training view: per-feature bin counts + raw data.
struct TrainContext<'d> {
    data: &'d Dataset,
    n_bins: Vec<usize>,
}

impl<'d> TrainContext<'d> {
    fn new(data: &'d Dataset) -> Self {
        assert!(data.is_labeled(), "tree training needs labels");
        assert!(data.n_rows() > 0, "tree training needs rows");
        let n_bins = (0..data.n_cols())
            .map(|j| {
                let max = (0..data.n_rows())
                    .map(|i| {
                        let v = data.row(i)[j];
                        assert!(
                            v.is_finite() && v >= 0.0 && v.fract() == 0.0,
                            "feature {j} is not discretized (value {v}); run a Discretizer first"
                        );
                        v as usize
                    })
                    .max()
                    .unwrap_or(0);
                assert!(
                    max < MAX_BINS,
                    "feature {j} has {max} bins, exceeding {MAX_BINS}"
                );
                max + 1
            })
            .collect();
        Self { data, n_bins }
    }

    #[inline]
    fn bin(&self, row: u32, feature: usize) -> usize {
        self.data.row(row as usize)[feature] as usize
    }

    #[inline]
    fn label(&self, row: u32) -> bool {
        self.data.label(row as usize) > 0.5
    }
}

/// Binary entropy in nats of a positive count within a total.
fn entropy(pos: usize, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let p = pos as f64 / n as f64;
    let mut h = 0.0;
    if p > 0.0 {
        h -= p * p.ln();
    }
    if p < 1.0 {
        h -= (1.0 - p) * (1.0 - p).ln();
    }
    h
}

/// Split evaluation: information gain and (for C5.0) gain ratio.
struct SplitScore {
    gain: f64,
    criterion: f64,
}

fn evaluate_split(
    ctx: &TrainContext,
    rows: &[u32],
    feature: usize,
    parent_entropy: f64,
    params: &GrowParams,
    counts: &mut [(usize, usize)],
) -> Option<SplitScore> {
    let k = ctx.n_bins[feature];
    for c in counts[..k].iter_mut() {
        *c = (0, 0);
    }
    for &r in rows {
        let b = ctx.bin(r, feature);
        counts[b].0 += 1;
        if ctx.label(r) {
            counts[b].1 += 1;
        }
    }
    let n = rows.len();
    let mut children_entropy = 0.0;
    let mut split_info = 0.0;
    let mut non_empty = 0usize;
    let mut branches_with_min = 0usize;
    for &(cn, cp) in &counts[..k] {
        if cn == 0 {
            continue;
        }
        non_empty += 1;
        if cn >= params.min_cases {
            branches_with_min += 1;
        }
        let frac = cn as f64 / n as f64;
        children_entropy += frac * entropy(cp, cn);
        split_info -= frac * frac.ln();
    }
    if non_empty < 2 {
        return None;
    }
    // C4.5's -m constraint: at least two branches hold min_cases rows.
    if params.algorithm == Algorithm::C50 && branches_with_min < 2 {
        return None;
    }
    let gain = parent_entropy - children_entropy;
    if gain < params.min_gain {
        return None;
    }
    let criterion = match params.algorithm {
        Algorithm::Id3 => gain,
        Algorithm::C50 => {
            if split_info <= 1e-12 {
                return None;
            }
            gain / split_info
        }
    };
    Some(SplitScore { gain, criterion })
}

/// Recursively grow the tree; returns the created node's index.
fn grow(
    ctx: &TrainContext,
    nodes: &mut Vec<TreeNode>,
    rows: Vec<u32>,
    used: &mut Vec<bool>,
    depth: usize,
    params: &GrowParams,
) -> u32 {
    let n = rows.len();
    let pos = rows.iter().filter(|&&r| ctx.label(r)).count();
    // Laplace smoothing keeps leaf probabilities usable for ranking.
    let prob = ((pos as f64 + 1.0) / (n as f64 + 2.0)) as f32;
    let idx = nodes.len() as u32;
    nodes.push(TreeNode {
        feature: NONE,
        children: Vec::new(),
        prob,
        n: n as u32,
    });

    if pos == 0 || pos == n || depth >= params.max_depth || n < 2 {
        return idx;
    }

    let parent_entropy = entropy(pos, n);
    let max_bins = ctx.n_bins.iter().copied().max().unwrap_or(1);
    let mut counts = vec![(0usize, 0usize); max_bins];

    // C4.5 heuristic: only consider features whose gain is at least the
    // average gain of all candidate splits, then pick max gain ratio.
    let mut candidates: Vec<(usize, SplitScore)> = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for f in 0..ctx.data.n_cols() {
        if used[f] {
            continue;
        }
        if let Some(s) = evaluate_split(ctx, &rows, f, parent_entropy, params, &mut counts) {
            candidates.push((f, s));
        }
    }
    if candidates.is_empty() {
        return idx;
    }
    let best_feature = match params.algorithm {
        Algorithm::Id3 => {
            candidates
                .iter()
                .max_by(|a, b| a.1.criterion.total_cmp(&b.1.criterion))
                .unwrap()
                .0
        }
        Algorithm::C50 => {
            let mean_gain: f64 =
                candidates.iter().map(|(_, s)| s.gain).sum::<f64>() / candidates.len() as f64;
            candidates
                .iter()
                .filter(|(_, s)| s.gain >= mean_gain - 1e-12)
                .max_by(|a, b| a.1.criterion.total_cmp(&b.1.criterion))
                .unwrap()
                .0
        }
    };

    // Partition rows by bin of the chosen feature.
    let k = ctx.n_bins[best_feature];
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); k];
    for &r in &rows {
        buckets[ctx.bin(r, best_feature)].push(r);
    }
    drop(rows);

    let mut children = vec![NONE; k];
    used[best_feature] = true;
    for (b, bucket) in buckets.into_iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        children[b] = grow(ctx, nodes, bucket, used, depth + 1, params);
    }
    used[best_feature] = false;

    nodes[idx as usize].feature = best_feature as u32;
    nodes[idx as usize].children = children;
    idx
}

/// Upper confidence bound on the error rate of `e` errors in `n` cases
/// (Wilson score upper bound at one-sided confidence `cf`, the standard
/// approximation of C4.5's pessimistic error).
fn pessimistic_error(n: f64, e: f64, cf: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let z = one_sided_z(cf);
    let f = e / n;
    let z2 = z * z;
    let num = f + z2 / (2.0 * n) + z * (f / n - f * f / n + z2 / (4.0 * n * n)).max(0.0).sqrt();
    (num / (1.0 + z2 / n)).min(1.0)
}

/// z-score with upper-tail probability `cf` (e.g. cf = 0.25 -> z ~ 0.6745),
/// via a rational approximation of the inverse normal CDF.
fn one_sided_z(cf: f64) -> f64 {
    // Beasley-Springer-Moro style approximation, adequate for cf in (0, 0.5].
    let p = 1.0 - cf.clamp(1e-6, 0.5);
    let t = (-2.0 * (1.0 - p).ln()).sqrt();
    let z = t - (2.30753 + 0.27061 * t) / (1.0 + 0.99229 * t + 0.04481 * t * t);
    z.max(0.0)
}

/// Bottom-up pessimistic pruning; returns the subtree's pessimistic error
/// count and collapses subtrees whose split does not pay for itself.
fn prune(nodes: &mut Vec<TreeNode>, idx: u32, cf: f64) -> f64 {
    let (feature, children, prob, n) = {
        let node = &nodes[idx as usize];
        (
            node.feature,
            node.children.clone(),
            node.prob,
            node.n as f64,
        )
    };
    // Errors if this node were a leaf predicting its majority class.
    let pos = (prob as f64 * (n + 2.0) - 1.0).max(0.0); // invert Laplace
    let leaf_errors = pos.min(n - pos.min(n));
    let leaf_pess = pessimistic_error(n, leaf_errors, cf) * n;
    if feature == NONE {
        return leaf_pess;
    }
    let mut subtree_pess = 0.0;
    for &c in children.iter().filter(|&&c| c != NONE) {
        subtree_pess += prune(nodes, c, cf);
    }
    if leaf_pess <= subtree_pess + 1e-9 {
        // Collapse: the split's estimated error is no better than a leaf.
        let node = &mut nodes[idx as usize];
        node.feature = NONE;
        node.children.clear();
        leaf_pess
    } else {
        subtree_pess
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR-ish dataset: label = f0 != f1, plus an irrelevant f2.
    fn xor_data(n_noise_rows: usize) -> Dataset {
        let mut d = Dataset::new(3);
        for rep in 0..8 {
            for (a, b) in [(0.0f32, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                let label = if a != b { 1.0 } else { 0.0 };
                d.push_row(&[a, b, (rep % 3) as f32], label);
            }
        }
        for i in 0..n_noise_rows {
            d.push_row(&[0.0, 0.0, (i % 3) as f32], 1.0); // label noise
        }
        d
    }

    /// AND dataset: label = f0 & f1 — greedily learnable (both features have
    /// positive root gain, unlike XOR where ID3 provably stalls).
    fn and_data() -> Dataset {
        let mut d = Dataset::new(3);
        for rep in 0..8 {
            for (a, b) in [(0.0f32, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                let label = if a == 1.0 && b == 1.0 { 1.0 } else { 0.0 };
                d.push_row(&[a, b, (rep % 3) as f32], label);
            }
        }
        d
    }

    #[test]
    fn id3_learns_conjunction_exactly() {
        let tree = Id3Config::default().fit(&and_data());
        for (a, b) in [(0.0f32, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            let want = if a == 1.0 && b == 1.0 { 1.0 } else { 0.0 };
            let got = tree.predict_proba(&[a, b, 0.0]);
            assert!(
                (got - want).abs() < 0.2,
                "and({a},{b}) predicted {got}, want ~{want}"
            );
        }
    }

    #[test]
    fn id3_with_informative_second_level_learns_xor_given_first_split() {
        // Pure XOR has zero root gain for every feature, so greedy ID3
        // cannot start — the canonical ID3 limitation. Verify the documented
        // behaviour: the tree degenerates to the prior.
        let tree = Id3Config::default().fit(&xor_data(0));
        let p = tree.predict_proba(&[0.0, 1.0, 0.0]);
        assert!((p - 0.5).abs() < 0.1, "expected prior ~0.5, got {p}");
    }

    #[test]
    fn c50_prunes_noise_smaller_than_id3() {
        // A single informative binary feature plus two high-cardinality
        // noise features that ID3 will happily split on.
        let mut d = Dataset::new(3);
        let mut state = 12345u64;
        let mut rand01 = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64).fract()
        };
        for i in 0..400 {
            let informative = (i % 2) as f32;
            let label = if rand01() < 0.9 {
                informative
            } else {
                1.0 - informative
            };
            d.push_row(
                &[informative, (i % 10) as f32, ((i / 3) % 10) as f32],
                label,
            );
        }
        let id3 = Id3Config::default().fit(&d);
        let c50 = C50Config::default().fit(&d);
        assert!(
            c50.node_count() < id3.node_count(),
            "C5.0 ({}) should be smaller than ID3 ({})",
            c50.node_count(),
            id3.node_count()
        );
        // Both should still get the informative feature right.
        assert!(c50.predict_proba(&[1.0, 0.0, 0.0]) > 0.6);
        assert!(c50.predict_proba(&[0.0, 0.0, 0.0]) < 0.4);
    }

    #[test]
    fn unseen_bin_falls_back_to_node_prior() {
        let mut d = Dataset::new(1);
        for _ in 0..10 {
            d.push_row(&[0.0], 0.0);
            d.push_row(&[1.0], 1.0);
        }
        let tree = Id3Config::default().fit(&d);
        // Bin 7 never seen during training -> root prior ~ 0.5.
        let p = tree.predict_proba(&[7.0]);
        assert!((p - 0.5).abs() < 0.1, "fallback prob {p}");
    }

    #[test]
    fn pure_dataset_is_single_leaf() {
        let mut d = Dataset::new(2);
        for i in 0..5 {
            d.push_row(&[i as f32, 0.0], 1.0);
        }
        let tree = Id3Config::default().fit(&d);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.depth(), 0);
        assert!(tree.predict_proba(&[0.0, 0.0]) > 0.8);
    }

    #[test]
    fn depth_cap_is_respected() {
        let d = xor_data(0);
        let tree = Id3Config {
            max_depth: 1,
            ..Default::default()
        }
        .fit(&d);
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn pessimistic_error_increases_for_small_n() {
        // Same observed error rate, less data -> more pessimism.
        let small = pessimistic_error(10.0, 1.0, 0.25);
        let large = pessimistic_error(1000.0, 100.0, 0.25);
        assert!(small > large);
        assert!(small > 0.1 && small < 1.0);
    }

    #[test]
    fn z_score_approximation_sane() {
        // z for one-sided 25% tail is ~0.6745.
        let z = one_sided_z(0.25);
        assert!((z - 0.6745).abs() < 0.03, "z = {z}");
    }

    #[test]
    #[should_panic(expected = "not discretized")]
    fn continuous_values_are_rejected() {
        let mut d = Dataset::new(1);
        d.push_row(&[0.5], 0.0);
        Id3Config::default().fit(&d);
    }

    #[test]
    fn leaf_and_node_counts_consistent() {
        let d = xor_data(4);
        let tree = C50Config::default().fit(&d);
        assert!(tree.leaf_count() <= tree.node_count());
        assert!(tree.leaf_count() >= 1);
    }
}
