//! The Figure 7 cell layout: per-user features and embeddings in Ali-HBase.
//!
//! Each user is a row (`u{id}`); column family `basic` holds the user-side
//! feature values (one qualifier each), and `embedding` holds one qualifier
//! per embedding dimension. Every offline run uploads a fresh **version**,
//! so the MS always reads the newest consistent snapshot while older
//! versions stay available for rollback.

use bytes::Bytes;
use titant_alihbase::{CellKey, RegionedTable, RowKey, Version};

/// Per-user serving payload: what the offline stage uploads and the MS
/// fetches per transfer party.
#[derive(Debug, Clone, PartialEq)]
pub struct UserFeatures {
    /// Payer-side features (profile + outgoing aggregates).
    pub payer_side: Vec<f32>,
    /// Receiver-side features (profile + incoming aggregates).
    pub receiver_side: Vec<f32>,
    /// Node embedding (possibly empty for users outside the network).
    pub embedding: Vec<f32>,
}

/// Encodes/decodes user features to the wide-column layout.
pub struct FeatureCodec {
    /// Embedding dimensionality expected at decode time.
    pub embedding_dim: usize,
    /// Widths of the two basic-feature sides.
    pub payer_width: usize,
    pub receiver_width: usize,
}

impl FeatureCodec {
    /// Row key of a user.
    pub fn row_key(user: u64) -> RowKey {
        RowKey::from_user(user)
    }

    /// Upload one user's features at `version`.
    pub fn put_user(
        &self,
        table: &RegionedTable,
        user: u64,
        features: &UserFeatures,
        version: Version,
    ) -> std::io::Result<()> {
        assert_eq!(features.payer_side.len(), self.payer_width);
        assert_eq!(features.receiver_side.len(), self.receiver_width);
        let row = Self::row_key(user);
        for (i, v) in features.payer_side.iter().enumerate() {
            table.put(
                CellKey {
                    row: row.clone(),
                    family: titant_alihbase::ColumnFamily("basic".into()),
                    qualifier: titant_alihbase::Qualifier(format!("p{i}")),
                },
                version,
                Bytes::copy_from_slice(&v.to_le_bytes()),
            )?;
        }
        for (i, v) in features.receiver_side.iter().enumerate() {
            table.put(
                CellKey {
                    row: row.clone(),
                    family: titant_alihbase::ColumnFamily("basic".into()),
                    qualifier: titant_alihbase::Qualifier(format!("r{i}")),
                },
                version,
                Bytes::copy_from_slice(&v.to_le_bytes()),
            )?;
        }
        for (i, v) in features.embedding.iter().enumerate() {
            table.put(
                CellKey {
                    row: row.clone(),
                    family: titant_alihbase::ColumnFamily("embedding".into()),
                    qualifier: titant_alihbase::Qualifier(i.to_string()),
                },
                version,
                Bytes::copy_from_slice(&v.to_le_bytes()),
            )?;
        }
        Ok(())
    }

    /// Fetch a user's features at or below `as_of` (`Version::MAX` =
    /// latest). Missing users yield `None`; users without embeddings get a
    /// zero vector (the cold-start case).
    pub fn get_user(
        &self,
        table: &RegionedTable,
        user: u64,
        as_of: Version,
    ) -> Option<UserFeatures> {
        let row = Self::row_key(user);
        let read = |family: &str, qualifier: String| -> Option<f32> {
            let key = CellKey {
                row: row.clone(),
                family: titant_alihbase::ColumnFamily(family.into()),
                qualifier: titant_alihbase::Qualifier(qualifier),
            };
            let bytes = table.get_versioned(&key, as_of)?;
            Some(f32::from_le_bytes(bytes.as_ref().try_into().ok()?))
        };
        let mut payer_side = Vec::with_capacity(self.payer_width);
        for i in 0..self.payer_width {
            payer_side.push(read("basic", format!("p{i}"))?);
        }
        let mut receiver_side = Vec::with_capacity(self.receiver_width);
        for i in 0..self.receiver_width {
            receiver_side.push(read("basic", format!("r{i}"))?);
        }
        let mut embedding = Vec::with_capacity(self.embedding_dim);
        for i in 0..self.embedding_dim {
            match read("embedding", i.to_string()) {
                Some(v) => embedding.push(v),
                None => {
                    embedding = vec![0.0; self.embedding_dim];
                    break;
                }
            }
        }
        Some(UserFeatures {
            payer_side,
            receiver_side,
            embedding,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titant_alihbase::StoreConfig;

    fn codec() -> FeatureCodec {
        FeatureCodec {
            embedding_dim: 4,
            payer_width: 3,
            receiver_width: 2,
        }
    }

    fn table() -> RegionedTable {
        RegionedTable::single(StoreConfig::default()).unwrap()
    }

    fn features(x: f32) -> UserFeatures {
        UserFeatures {
            payer_side: vec![x, x + 1.0, x + 2.0],
            receiver_side: vec![x * 10.0, x * 20.0],
            embedding: vec![x; 4],
        }
    }

    #[test]
    fn put_get_round_trip() {
        let t = table();
        let c = codec();
        c.put_user(&t, 42, &features(1.5), 20170410).unwrap();
        let got = c.get_user(&t, 42, u64::MAX).unwrap();
        assert_eq!(got, features(1.5));
        assert!(c.get_user(&t, 99, u64::MAX).is_none());
    }

    #[test]
    fn versions_roll_forward_and_back() {
        let t = table();
        let c = codec();
        c.put_user(&t, 7, &features(1.0), 20170410).unwrap();
        c.put_user(&t, 7, &features(2.0), 20170411).unwrap();
        // Latest wins.
        assert_eq!(c.get_user(&t, 7, u64::MAX).unwrap(), features(2.0));
        // Yesterday's snapshot still readable (rollback path).
        assert_eq!(c.get_user(&t, 7, 20170410).unwrap(), features(1.0));
    }

    #[test]
    fn missing_embedding_decodes_as_zero_vector() {
        let t = table();
        let c = codec();
        let mut f = features(3.0);
        f.embedding.clear();
        c.put_user(
            &t,
            5,
            &UserFeatures {
                embedding: Vec::new(),
                ..f.clone()
            },
            1,
        )
        .unwrap();
        let got = c.get_user(&t, 5, u64::MAX).unwrap();
        assert_eq!(got.embedding, vec![0.0; 4]);
        assert_eq!(got.payer_side, f.payer_side);
    }
}
