//! The Figure 7 cell layout: per-user features and embeddings in Ali-HBase.
//!
//! Each user is a row (`u{id}`); column family `basic` holds the user-side
//! feature values (one qualifier each), and `embedding` holds one qualifier
//! per embedding dimension. Every offline run uploads a fresh **version**,
//! so the MS always reads the newest consistent snapshot while older
//! versions stay available for rollback.

use crate::error::ServeError;
use bytes::Bytes;
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Duration;
use titant_alihbase::{
    CellKey, ColumnFamily, Qualifier, ReadOptions, RegionedTable, RowKey, Version,
};

/// How many qualifier names per family are precomputed at first use.
///
/// Real TitAnt rows hold a few hundred features at most; anything past the
/// table falls back to on-the-fly formatting/parsing, so the cap is a
/// memory bound, not a correctness limit.
const PRECOMPUTED_QUALIFIERS: usize = 512;

/// Where a `basic`-family qualifier lands in the decoded row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BasicSlot {
    Payer(usize),
    Receiver(usize),
}

/// Precomputed qualifier names and their reverse index.
///
/// Encoding used to build `p{i}` / `r{i}` / `{i}` strings per cell per put,
/// and decoding re-parsed every qualifier with `str::parse`. Both now hit
/// this table: encode clones an interned name, decode looks the name up in
/// a hash map. Built once per process, shared by every codec instance (the
/// layout names do not depend on codec widths).
struct QualTable {
    basic: ColumnFamily,
    embedding_family: ColumnFamily,
    /// Streaming velocity slots live in their own family so T+1 uploads
    /// and the streaming aggregator never contend on a qualifier.
    velocity_family: ColumnFamily,
    payer: Vec<Qualifier>,
    receiver: Vec<Qualifier>,
    embedding: Vec<Qualifier>,
    basic_slots: HashMap<String, BasicSlot>,
    embedding_slots: HashMap<String, usize>,
}

impl QualTable {
    fn build() -> QualTable {
        let mut payer = Vec::with_capacity(PRECOMPUTED_QUALIFIERS);
        let mut receiver = Vec::with_capacity(PRECOMPUTED_QUALIFIERS);
        let mut embedding = Vec::with_capacity(PRECOMPUTED_QUALIFIERS);
        let mut basic_slots = HashMap::with_capacity(2 * PRECOMPUTED_QUALIFIERS);
        let mut embedding_slots = HashMap::with_capacity(PRECOMPUTED_QUALIFIERS);
        for i in 0..PRECOMPUTED_QUALIFIERS {
            let p = format!("p{i}");
            basic_slots.insert(p.clone(), BasicSlot::Payer(i));
            payer.push(Qualifier(p));
            let r = format!("r{i}");
            basic_slots.insert(r.clone(), BasicSlot::Receiver(i));
            receiver.push(Qualifier(r));
            let e = i.to_string();
            embedding_slots.insert(e.clone(), i);
            embedding.push(Qualifier(e));
        }
        QualTable {
            basic: ColumnFamily("basic".into()),
            embedding_family: ColumnFamily("embedding".into()),
            velocity_family: ColumnFamily("velocity".into()),
            payer,
            receiver,
            embedding,
            basic_slots,
            embedding_slots,
        }
    }

    fn payer_qualifier(&self, i: usize) -> Qualifier {
        match self.payer.get(i) {
            Some(q) => q.clone(),
            None => Qualifier(format!("p{i}")),
        }
    }

    fn receiver_qualifier(&self, i: usize) -> Qualifier {
        match self.receiver.get(i) {
            Some(q) => q.clone(),
            None => Qualifier(format!("r{i}")),
        }
    }

    fn embedding_qualifier(&self, i: usize) -> Qualifier {
        match self.embedding.get(i) {
            Some(q) => q.clone(),
            None => Qualifier(i.to_string()),
        }
    }

    /// Velocity qualifiers are plain dimension indices like embedding
    /// ones (the family disambiguates), so the interned names are shared.
    fn velocity_qualifier(&self, i: usize) -> Qualifier {
        self.embedding_qualifier(i)
    }

    /// Resolve a `velocity` qualifier to its slot index.
    fn velocity_slot(&self, qualifier: &str) -> Option<usize> {
        self.embedding_slot(qualifier)
    }

    /// Resolve a `basic` qualifier to its slot; table hit first, parse as
    /// the out-of-table fallback (matching the names the encoder emits).
    fn basic_slot(&self, qualifier: &str) -> Option<BasicSlot> {
        if let Some(&slot) = self.basic_slots.get(qualifier) {
            return Some(slot);
        }
        let (tag, digits) = qualifier.split_at_checked(1)?;
        let i = digits.parse::<usize>().ok()?;
        match tag {
            "p" => Some(BasicSlot::Payer(i)),
            "r" => Some(BasicSlot::Receiver(i)),
            _ => None,
        }
    }

    /// Resolve an `embedding` qualifier to its dimension index.
    fn embedding_slot(&self, qualifier: &str) -> Option<usize> {
        if let Some(&i) = self.embedding_slots.get(qualifier) {
            return Some(i);
        }
        qualifier.parse::<usize>().ok()
    }
}

fn qual_table() -> &'static QualTable {
    static QUALIFIERS: OnceLock<QualTable> = OnceLock::new();
    QUALIFIERS.get_or_init(QualTable::build)
}

/// Per-user serving payload: what the offline stage uploads and the MS
/// fetches per transfer party.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UserFeatures {
    /// Payer-side features (profile + outgoing aggregates).
    pub payer_side: Vec<f32>,
    /// Receiver-side features (profile + incoming aggregates).
    pub receiver_side: Vec<f32>,
    /// Node embedding (possibly empty for users outside the network).
    pub embedding: Vec<f32>,
    /// Streaming velocity slots (windowed counts / amounts / distinct
    /// counterparties). Empty for users the streaming tier has not
    /// touched; individual missing slots decode as zero.
    pub velocity: Vec<f32>,
}

/// A partial per-user feature update: `(index, value)` pairs per block.
///
/// This is the streaming-ingest unit — an online job corrects a handful of
/// aggregates for a user without re-uploading the whole row. Untouched
/// qualifiers keep their previous version, so a read at `Version::MAX`
/// merges the delta over the last full upload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureDelta {
    /// The user whose row is patched.
    pub user: u64,
    /// Payer-side updates as `(feature index, new value)`.
    pub payer: Vec<(usize, f32)>,
    /// Receiver-side updates as `(feature index, new value)`.
    pub receiver: Vec<(usize, f32)>,
    /// Embedding-dimension updates as `(dimension, new value)`.
    pub embedding: Vec<(usize, f32)>,
    /// Velocity-slot updates as `(slot index, new value)` — the unit the
    /// streaming aggregator emits on every tick advance.
    pub velocity: Vec<(usize, f32)>,
}

impl FeatureDelta {
    /// Number of cells this delta writes.
    pub fn len(&self) -> usize {
        self.payer.len() + self.receiver.len() + self.embedding.len() + self.velocity.len()
    }

    /// True when the delta patches nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Encodes/decodes user features to the wide-column layout.
pub struct FeatureCodec {
    /// Embedding dimensionality expected at decode time.
    pub embedding_dim: usize,
    /// Widths of the two basic-feature sides.
    pub payer_width: usize,
    pub receiver_width: usize,
    /// Streaming velocity slots per user; `0` disables the block entirely
    /// (no extra cells written, none expected at decode).
    pub velocity_width: usize,
}

impl FeatureCodec {
    /// Row key of a user.
    pub fn row_key(user: u64) -> RowKey {
        RowKey::from_user(user)
    }

    /// Encode one user's full row as a single write batch.
    ///
    /// The returned cells go through [`RegionedTable::put_rows`] as one
    /// all-or-nothing unit: one store-lock acquisition and one WAL frame
    /// per owning region instead of one of each per qualifier.
    pub fn encode_user(
        &self,
        user: u64,
        features: &UserFeatures,
        version: Version,
    ) -> Vec<(CellKey, Version, Option<Bytes>)> {
        assert_eq!(features.payer_side.len(), self.payer_width);
        assert_eq!(features.receiver_side.len(), self.receiver_width);
        let quals = qual_table();
        let row = Self::row_key(user);
        let mut cells = Vec::with_capacity(
            features.payer_side.len() + features.receiver_side.len() + features.embedding.len(),
        );
        for (i, v) in features.payer_side.iter().enumerate() {
            cells.push((
                CellKey {
                    row: row.clone(),
                    family: quals.basic.clone(),
                    qualifier: quals.payer_qualifier(i),
                },
                version,
                Some(Bytes::copy_from_slice(&v.to_le_bytes())),
            ));
        }
        for (i, v) in features.receiver_side.iter().enumerate() {
            cells.push((
                CellKey {
                    row: row.clone(),
                    family: quals.basic.clone(),
                    qualifier: quals.receiver_qualifier(i),
                },
                version,
                Some(Bytes::copy_from_slice(&v.to_le_bytes())),
            ));
        }
        for (i, v) in features.embedding.iter().enumerate() {
            cells.push((
                CellKey {
                    row: row.clone(),
                    family: quals.embedding_family.clone(),
                    qualifier: quals.embedding_qualifier(i),
                },
                version,
                Some(Bytes::copy_from_slice(&v.to_le_bytes())),
            ));
        }
        for (i, v) in features.velocity.iter().enumerate() {
            cells.push((
                CellKey {
                    row: row.clone(),
                    family: quals.velocity_family.clone(),
                    qualifier: quals.velocity_qualifier(i),
                },
                version,
                Some(Bytes::copy_from_slice(&v.to_le_bytes())),
            ));
        }
        cells
    }

    /// Encode a partial update as a write batch (same shape as
    /// [`Self::encode_user`], covering only the touched qualifiers).
    ///
    /// Indices must fall inside the codec's declared widths — a delta for a
    /// qualifier the layout cannot serve is a programming error, same as an
    /// ill-sized full upload.
    pub fn encode_delta(
        &self,
        delta: &FeatureDelta,
        version: Version,
    ) -> Vec<(CellKey, Version, Option<Bytes>)> {
        let quals = qual_table();
        let row = Self::row_key(delta.user);
        let mut cells = Vec::with_capacity(delta.len());
        for &(i, v) in &delta.payer {
            assert!(i < self.payer_width, "payer delta index {i} out of layout");
            cells.push((
                CellKey {
                    row: row.clone(),
                    family: quals.basic.clone(),
                    qualifier: quals.payer_qualifier(i),
                },
                version,
                Some(Bytes::copy_from_slice(&v.to_le_bytes())),
            ));
        }
        for &(i, v) in &delta.receiver {
            assert!(
                i < self.receiver_width,
                "receiver delta index {i} out of layout"
            );
            cells.push((
                CellKey {
                    row: row.clone(),
                    family: quals.basic.clone(),
                    qualifier: quals.receiver_qualifier(i),
                },
                version,
                Some(Bytes::copy_from_slice(&v.to_le_bytes())),
            ));
        }
        for &(i, v) in &delta.embedding {
            assert!(
                i < self.embedding_dim,
                "embedding delta index {i} out of layout"
            );
            cells.push((
                CellKey {
                    row: row.clone(),
                    family: quals.embedding_family.clone(),
                    qualifier: quals.embedding_qualifier(i),
                },
                version,
                Some(Bytes::copy_from_slice(&v.to_le_bytes())),
            ));
        }
        for &(i, v) in &delta.velocity {
            assert!(
                i < self.velocity_width,
                "velocity delta index {i} out of layout"
            );
            cells.push((
                CellKey {
                    row: row.clone(),
                    family: quals.velocity_family.clone(),
                    qualifier: quals.velocity_qualifier(i),
                },
                version,
                Some(Bytes::copy_from_slice(&v.to_le_bytes())),
            ));
        }
        cells
    }

    /// Upload one user's features at `version` as a single batched write.
    pub fn put_user(
        &self,
        table: &RegionedTable,
        user: u64,
        features: &UserFeatures,
        version: Version,
    ) -> std::io::Result<()> {
        table.put_rows(self.encode_user(user, features, version))?;
        Ok(())
    }

    /// Fetch a user's features at or below `as_of` (`Version::MAX` =
    /// latest) with a **single row read** — one store operation per user
    /// instead of one point get per qualifier — and decode the returned
    /// cells in one pass.
    ///
    /// Missing users yield `Ok(None)`; users without a (complete) embedding
    /// get a zero vector (the cold-start case). A row that exists but is
    /// missing part of its basic block, or holds a cell that is not a
    /// 4-byte `f32`, is reported as a torn-row/torn-cell error the server
    /// degrades on.
    pub fn get_user(
        &self,
        table: &RegionedTable,
        user: u64,
        as_of: Version,
    ) -> Result<Option<UserFeatures>, ServeError> {
        let row = Self::row_key(user);
        self.decode_cells(user, &table.get_row(&row, as_of))
    }

    /// Batched [`Self::get_user`]: fetch every row in one
    /// [`RegionedTable::get_rows`] call (a single store-lock acquisition per
    /// owning region) and decode per user. Results keep the input order;
    /// each user decodes independently, so one torn row degrades only its
    /// own slot.
    pub fn get_users(
        &self,
        table: &RegionedTable,
        users: &[u64],
        as_of: Version,
    ) -> Vec<Result<Option<UserFeatures>, ServeError>> {
        let rows: Vec<RowKey> = users.iter().map(|&u| Self::row_key(u)).collect();
        let batches = table.get_rows(&rows, as_of);
        users
            .iter()
            .zip(&batches)
            .map(|(&user, cells)| self.decode_cells(user, cells))
            .collect()
    }

    /// [`Self::get_user`] through the fault-aware read path: the read goes
    /// to the replica named in `opts`, may fault per the table's installed
    /// [`titant_alihbase::FaultHook`], and reports the simulated latency it
    /// absorbed. A faulted read surfaces as [`ServeError::Fetch`] carrying
    /// the classified [`titant_alihbase::ReadFault`] for the server's
    /// retry/hedge/failover loop.
    pub fn get_user_opts(
        &self,
        table: &RegionedTable,
        user: u64,
        as_of: Version,
        opts: ReadOptions,
    ) -> Result<(Option<UserFeatures>, Duration), ServeError> {
        let row = Self::row_key(user);
        let read = table
            .try_get_row(&row, as_of, opts)
            .map_err(|fault| ServeError::Fetch { user, fault })?;
        Ok((self.decode_cells(user, &read.cells)?, read.waited))
    }

    /// Decode one row's cells into [`UserFeatures`].
    fn decode_cells(
        &self,
        user: u64,
        cells: &[(CellKey, Bytes)],
    ) -> Result<Option<UserFeatures>, ServeError> {
        if cells.is_empty() {
            return Ok(None);
        }
        let quals = qual_table();
        let mut payer_side = vec![None; self.payer_width];
        let mut receiver_side = vec![None; self.receiver_width];
        let mut embedding = vec![None; self.embedding_dim];
        let mut velocity = vec![None; self.velocity_width];
        for (key, bytes) in cells {
            let slot = match key.family.0.as_str() {
                "basic" => match quals.basic_slot(&key.qualifier.0) {
                    Some(BasicSlot::Payer(i)) => payer_side.get_mut(i),
                    Some(BasicSlot::Receiver(i)) => receiver_side.get_mut(i),
                    None => None,
                },
                "embedding" => quals
                    .embedding_slot(&key.qualifier.0)
                    .and_then(|i| embedding.get_mut(i)),
                "velocity" => quals
                    .velocity_slot(&key.qualifier.0)
                    .and_then(|i| velocity.get_mut(i)),
                _ => None,
            };
            // Unknown families/qualifiers and out-of-range indices are
            // ignored: the layout, not the row, decides what gets served.
            let Some(slot) = slot else { continue };
            let value: [u8; 4] = bytes
                .as_ref()
                .try_into()
                .map_err(|_| ServeError::TornCell {
                    user,
                    column: format!("{}:{}", key.family.0, key.qualifier.0),
                    len: bytes.len(),
                })?;
            *slot = Some(f32::from_le_bytes(value));
        }
        let present = payer_side.iter().flatten().count() + receiver_side.iter().flatten().count();
        let expected = self.payer_width + self.receiver_width;
        if present < expected {
            return Err(ServeError::TornRow {
                user,
                present,
                expected,
            });
        }
        // Any missing embedding dimension downgrades the whole embedding to
        // the zero vector — the cold-start input the models trained on.
        let embedding = if embedding.iter().all(Option::is_some) {
            embedding.into_iter().flatten().collect()
        } else {
            vec![0.0; self.embedding_dim]
        };
        // Velocity slots are independent counters patched one at a time by
        // streaming deltas, so — unlike the all-or-nothing embedding — each
        // missing slot individually decodes as zero ("no activity seen").
        let velocity = velocity.into_iter().map(|v| v.unwrap_or(0.0)).collect();
        Ok(Some(UserFeatures {
            payer_side: payer_side.into_iter().flatten().collect(),
            receiver_side: receiver_side.into_iter().flatten().collect(),
            embedding,
            velocity,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titant_alihbase::StoreConfig;

    fn codec() -> FeatureCodec {
        FeatureCodec {
            embedding_dim: 4,
            payer_width: 3,
            receiver_width: 2,
            velocity_width: 0,
        }
    }

    fn table() -> RegionedTable {
        RegionedTable::single(StoreConfig::default()).unwrap()
    }

    fn features(x: f32) -> UserFeatures {
        UserFeatures {
            payer_side: vec![x, x + 1.0, x + 2.0],
            receiver_side: vec![x * 10.0, x * 20.0],
            embedding: vec![x; 4],
            velocity: Vec::new(),
        }
    }

    #[test]
    fn put_get_round_trip() {
        let t = table();
        let c = codec();
        c.put_user(&t, 42, &features(1.5), 20170410).unwrap();
        let got = c.get_user(&t, 42, u64::MAX).unwrap().unwrap();
        assert_eq!(got, features(1.5));
        assert!(c.get_user(&t, 99, u64::MAX).unwrap().is_none());
    }

    #[test]
    fn get_user_is_a_single_store_operation() {
        let t = table();
        let c = codec();
        c.put_user(&t, 42, &features(1.5), 20170410).unwrap();
        t.flush().unwrap();
        let before = t.op_counts();
        c.get_user(&t, 42, u64::MAX).unwrap().unwrap();
        let delta = t.op_counts().since(&before);
        assert_eq!(delta.row_gets, 1);
        assert_eq!(
            delta.total(),
            1,
            "fetching a user must not fan out into per-qualifier gets: {delta:?}"
        );
    }

    #[test]
    fn get_users_matches_get_user_per_slot() {
        let t = table();
        let c = codec();
        c.put_user(&t, 1, &features(1.0), 1).unwrap();
        c.put_user(&t, 2, &features(2.0), 1).unwrap();
        t.flush().unwrap();
        // User 3 is torn (one lonely payer cell), user 99 is missing.
        t.put(
            CellKey {
                row: FeatureCodec::row_key(3),
                family: titant_alihbase::ColumnFamily("basic".into()),
                qualifier: titant_alihbase::Qualifier("p0".into()),
            },
            1,
            Bytes::copy_from_slice(&1.0f32.to_le_bytes()),
        )
        .unwrap();
        let before = t.op_counts();
        let got = c.get_users(&t, &[2, 99, 3, 1], u64::MAX);
        let delta = t.op_counts().since(&before);
        assert_eq!(delta.row_gets, 4, "one logical row get per user");
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].as_ref().unwrap(), &Some(features(2.0)));
        assert_eq!(got[1].as_ref().unwrap(), &None);
        assert!(matches!(got[2], Err(ServeError::TornRow { user: 3, .. })));
        assert_eq!(got[3].as_ref().unwrap(), &Some(features(1.0)));
    }

    #[test]
    fn get_user_opts_without_hook_matches_get_user() {
        let t = table();
        let c = codec();
        c.put_user(&t, 42, &features(1.5), 20170410).unwrap();
        let (got, waited) = c
            .get_user_opts(&t, 42, u64::MAX, ReadOptions::default())
            .unwrap();
        assert_eq!(got, c.get_user(&t, 42, u64::MAX).unwrap());
        assert_eq!(waited, Duration::ZERO);
        let (missing, _) = c
            .get_user_opts(&t, 99, u64::MAX, ReadOptions::default())
            .unwrap();
        assert!(missing.is_none());
    }

    #[test]
    fn get_user_opts_surfaces_read_faults_as_fetch_errors() {
        use std::sync::Arc;
        use titant_alihbase::{FaultKind, FaultPlan, FaultPlanConfig};
        let t = table();
        let c = codec();
        c.put_user(&t, 42, &features(1.5), 20170410).unwrap();
        t.set_fault_hook(Some(Arc::new(FaultPlan::new(FaultPlanConfig {
            transient_rate: 1.0,
            ..Default::default()
        }))));
        let err = c
            .get_user_opts(&t, 42, u64::MAX, ReadOptions::default())
            .unwrap_err();
        assert!(
            matches!(
                &err,
                ServeError::Fetch { user: 42, fault } if fault.kind == FaultKind::Transient
            ),
            "{err:?}"
        );
        assert!(err.is_degradable());
        t.set_fault_hook(None);
        assert!(c
            .get_user_opts(&t, 42, u64::MAX, ReadOptions::default())
            .is_ok());
    }

    #[test]
    fn versions_roll_forward_and_back() {
        let t = table();
        let c = codec();
        c.put_user(&t, 7, &features(1.0), 20170410).unwrap();
        c.put_user(&t, 7, &features(2.0), 20170411).unwrap();
        // Latest wins.
        assert_eq!(c.get_user(&t, 7, u64::MAX).unwrap().unwrap(), features(2.0));
        // Yesterday's snapshot still readable (rollback path).
        assert_eq!(c.get_user(&t, 7, 20170410).unwrap().unwrap(), features(1.0));
    }

    #[test]
    fn missing_embedding_decodes_as_zero_vector() {
        let t = table();
        let c = codec();
        let mut f = features(3.0);
        f.embedding.clear();
        c.put_user(
            &t,
            5,
            &UserFeatures {
                embedding: Vec::new(),
                ..f.clone()
            },
            1,
        )
        .unwrap();
        let got = c.get_user(&t, 5, u64::MAX).unwrap().unwrap();
        assert_eq!(got.embedding, vec![0.0; 4]);
        assert_eq!(got.payer_side, f.payer_side);
    }

    #[test]
    fn partial_embedding_also_degrades_to_zero_vector() {
        let t = table();
        let c = codec();
        let mut f = features(3.0);
        f.embedding.truncate(2); // 2 of 4 dims uploaded
        c.put_user(&t, 6, &f, 1).unwrap();
        let got = c.get_user(&t, 6, u64::MAX).unwrap().unwrap();
        assert_eq!(got.embedding, vec![0.0; 4]);
    }

    #[test]
    fn torn_basic_row_is_an_error_not_a_panic() {
        let t = table();
        let c = codec();
        // Only one of three payer cells uploaded: a torn row.
        t.put(
            CellKey {
                row: FeatureCodec::row_key(8),
                family: titant_alihbase::ColumnFamily("basic".into()),
                qualifier: titant_alihbase::Qualifier("p0".into()),
            },
            1,
            Bytes::copy_from_slice(&1.0f32.to_le_bytes()),
        )
        .unwrap();
        let err = c.get_user(&t, 8, u64::MAX).unwrap_err();
        assert!(matches!(
            err,
            ServeError::TornRow {
                user: 8,
                present: 1,
                expected: 5
            }
        ));
        assert!(err.is_degradable());
    }

    #[test]
    fn torn_cell_bytes_are_an_error_not_a_panic() {
        let t = table();
        let c = codec();
        c.put_user(&t, 9, &features(1.0), 1).unwrap();
        // Overwrite one cell with a 3-byte torn value.
        t.put(
            CellKey {
                row: FeatureCodec::row_key(9),
                family: titant_alihbase::ColumnFamily("basic".into()),
                qualifier: titant_alihbase::Qualifier("r1".into()),
            },
            2,
            Bytes::from_static(b"xyz"),
        )
        .unwrap();
        let err = c.get_user(&t, 9, u64::MAX).unwrap_err();
        assert!(
            matches!(&err, ServeError::TornCell { user: 9, column, len: 3 } if column == "basic:r1")
        );
        // The previous intact version remains readable.
        assert_eq!(c.get_user(&t, 9, 1).unwrap().unwrap(), features(1.0));
    }

    #[test]
    fn qualifier_table_matches_formatting_in_and_beyond_range() {
        let q = qual_table();
        assert_eq!(q.payer_qualifier(0).0, "p0");
        assert_eq!(q.receiver_qualifier(PRECOMPUTED_QUALIFIERS - 1).0, "r511");
        assert_eq!(q.embedding_qualifier(3).0, "3");
        // Past the table the names still come out identical, just formatted
        // on the fly.
        let big = PRECOMPUTED_QUALIFIERS + 5;
        assert_eq!(q.payer_qualifier(big).0, format!("p{big}"));
        assert_eq!(q.embedding_qualifier(big).0, big.to_string());
        // Reverse lookups agree, both through the map and the fallback.
        assert_eq!(q.basic_slot("p7"), Some(BasicSlot::Payer(7)));
        assert_eq!(q.basic_slot("r600"), Some(BasicSlot::Receiver(600)));
        assert_eq!(q.basic_slot("x1"), None);
        assert_eq!(q.embedding_slot("600"), Some(600));
        assert_eq!(q.embedding_slot("seven"), None);
    }

    #[test]
    fn put_user_is_one_batch_and_one_lock_acquisition() {
        let t = table();
        let c = codec();
        let before = t.write_stats();
        c.put_user(&t, 42, &features(1.5), 20170410).unwrap();
        let delta = t.write_stats().since(&before);
        assert_eq!(delta.batches, 1, "whole row must land as one batch");
        assert_eq!(delta.lock_acquisitions, 1);
        assert_eq!(delta.cells_written, 3 + 2 + 4);
    }

    #[test]
    fn encode_delta_merges_over_the_last_full_upload() {
        let t = table();
        let c = codec();
        c.put_user(&t, 42, &features(1.0), 1).unwrap();
        let delta = FeatureDelta {
            user: 42,
            payer: vec![(1, 99.0)],
            receiver: vec![(0, -5.0)],
            embedding: vec![(2, 0.25)],
            velocity: Vec::new(),
        };
        t.put_rows(c.encode_delta(&delta, 2)).unwrap();
        let got = c.get_user(&t, 42, u64::MAX).unwrap().unwrap();
        assert_eq!(got.payer_side, vec![1.0, 99.0, 3.0]);
        assert_eq!(got.receiver_side, vec![-5.0, 20.0]);
        assert_eq!(got.embedding, vec![1.0, 1.0, 0.25, 1.0]);
        // The pre-delta snapshot is still intact at its version.
        assert_eq!(c.get_user(&t, 42, 1).unwrap().unwrap(), features(1.0));
    }

    fn velocity_codec() -> FeatureCodec {
        FeatureCodec {
            velocity_width: 3,
            ..codec()
        }
    }

    #[test]
    fn velocity_round_trips_and_missing_slots_decode_as_zero() {
        let t = table();
        let c = velocity_codec();
        let mut f = features(1.0);
        f.velocity = vec![2.0, 350.0, 1.0];
        c.put_user(&t, 42, &f, 1).unwrap();
        assert_eq!(c.get_user(&t, 42, u64::MAX).unwrap().unwrap(), f);
        // A row the streaming tier never touched serves an all-zero block —
        // no torn-row error, no cold-start special case.
        c.put_user(&t, 7, &features(2.0), 1).unwrap();
        let got = c.get_user(&t, 7, u64::MAX).unwrap().unwrap();
        assert_eq!(got.velocity, vec![0.0; 3]);
        // And a codec with the block disabled ignores velocity cells.
        let narrow = codec();
        let got = narrow.get_user(&t, 42, u64::MAX).unwrap().unwrap();
        assert!(got.velocity.is_empty());
        assert_eq!(got.payer_side, f.payer_side);
    }

    #[test]
    fn velocity_deltas_patch_single_slots() {
        let t = table();
        let c = velocity_codec();
        c.put_user(&t, 5, &features(1.0), 1).unwrap();
        // Stream one slot at a time: untouched slots stay at their previous
        // value (zero when never written), per-slot merge semantics.
        t.put_rows(c.encode_delta(
            &FeatureDelta {
                user: 5,
                velocity: vec![(1, 4.0)],
                ..FeatureDelta::default()
            },
            2,
        ))
        .unwrap();
        let got = c.get_user(&t, 5, u64::MAX).unwrap().unwrap();
        assert_eq!(got.velocity, vec![0.0, 4.0, 0.0]);
        t.put_rows(c.encode_delta(
            &FeatureDelta {
                user: 5,
                velocity: vec![(0, 1.0), (1, 5.0)],
                ..FeatureDelta::default()
            },
            3,
        ))
        .unwrap();
        let got = c.get_user(&t, 5, u64::MAX).unwrap().unwrap();
        assert_eq!(got.velocity, vec![1.0, 5.0, 0.0]);
        // The pre-patch snapshot stays readable at its version.
        let old = c.get_user(&t, 5, 2).unwrap().unwrap();
        assert_eq!(old.velocity, vec![0.0, 4.0, 0.0]);
    }

    #[test]
    fn unknown_qualifiers_are_ignored() {
        let t = table();
        let c = codec();
        c.put_user(&t, 10, &features(2.0), 1).unwrap();
        for (family, qualifier) in [("basic", "x9"), ("basic", "p99"), ("audit", "note")] {
            t.put(
                CellKey {
                    row: FeatureCodec::row_key(10),
                    family: titant_alihbase::ColumnFamily(family.into()),
                    qualifier: titant_alihbase::Qualifier(qualifier.into()),
                },
                1,
                Bytes::from_static(b"whatever"),
            )
            .unwrap();
        }
        assert_eq!(
            c.get_user(&t, 10, u64::MAX).unwrap().unwrap(),
            features(2.0)
        );
    }
}
