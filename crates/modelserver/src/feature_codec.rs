//! The Figure 7 cell layout: per-user features and embeddings in Ali-HBase.
//!
//! Each user is a row (`u{id}`); column family `basic` holds the user-side
//! feature values (one qualifier each), and `embedding` holds one qualifier
//! per embedding dimension. Every offline run uploads a fresh **version**,
//! so the MS always reads the newest consistent snapshot while older
//! versions stay available for rollback.

use crate::error::ServeError;
use bytes::Bytes;
use std::time::Duration;
use titant_alihbase::{CellKey, ReadOptions, RegionedTable, RowKey, Version};

/// Per-user serving payload: what the offline stage uploads and the MS
/// fetches per transfer party.
#[derive(Debug, Clone, PartialEq)]
pub struct UserFeatures {
    /// Payer-side features (profile + outgoing aggregates).
    pub payer_side: Vec<f32>,
    /// Receiver-side features (profile + incoming aggregates).
    pub receiver_side: Vec<f32>,
    /// Node embedding (possibly empty for users outside the network).
    pub embedding: Vec<f32>,
}

/// Encodes/decodes user features to the wide-column layout.
pub struct FeatureCodec {
    /// Embedding dimensionality expected at decode time.
    pub embedding_dim: usize,
    /// Widths of the two basic-feature sides.
    pub payer_width: usize,
    pub receiver_width: usize,
}

impl FeatureCodec {
    /// Row key of a user.
    pub fn row_key(user: u64) -> RowKey {
        RowKey::from_user(user)
    }

    /// Upload one user's features at `version`.
    pub fn put_user(
        &self,
        table: &RegionedTable,
        user: u64,
        features: &UserFeatures,
        version: Version,
    ) -> std::io::Result<()> {
        assert_eq!(features.payer_side.len(), self.payer_width);
        assert_eq!(features.receiver_side.len(), self.receiver_width);
        let row = Self::row_key(user);
        for (i, v) in features.payer_side.iter().enumerate() {
            table.put(
                CellKey {
                    row: row.clone(),
                    family: titant_alihbase::ColumnFamily("basic".into()),
                    qualifier: titant_alihbase::Qualifier(format!("p{i}")),
                },
                version,
                Bytes::copy_from_slice(&v.to_le_bytes()),
            )?;
        }
        for (i, v) in features.receiver_side.iter().enumerate() {
            table.put(
                CellKey {
                    row: row.clone(),
                    family: titant_alihbase::ColumnFamily("basic".into()),
                    qualifier: titant_alihbase::Qualifier(format!("r{i}")),
                },
                version,
                Bytes::copy_from_slice(&v.to_le_bytes()),
            )?;
        }
        for (i, v) in features.embedding.iter().enumerate() {
            table.put(
                CellKey {
                    row: row.clone(),
                    family: titant_alihbase::ColumnFamily("embedding".into()),
                    qualifier: titant_alihbase::Qualifier(i.to_string()),
                },
                version,
                Bytes::copy_from_slice(&v.to_le_bytes()),
            )?;
        }
        Ok(())
    }

    /// Fetch a user's features at or below `as_of` (`Version::MAX` =
    /// latest) with a **single row read** — one store operation per user
    /// instead of one point get per qualifier — and decode the returned
    /// cells in one pass.
    ///
    /// Missing users yield `Ok(None)`; users without a (complete) embedding
    /// get a zero vector (the cold-start case). A row that exists but is
    /// missing part of its basic block, or holds a cell that is not a
    /// 4-byte `f32`, is reported as a torn-row/torn-cell error the server
    /// degrades on.
    pub fn get_user(
        &self,
        table: &RegionedTable,
        user: u64,
        as_of: Version,
    ) -> Result<Option<UserFeatures>, ServeError> {
        let row = Self::row_key(user);
        self.decode_cells(user, &table.get_row(&row, as_of))
    }

    /// Batched [`Self::get_user`]: fetch every row in one
    /// [`RegionedTable::get_rows`] call (a single store-lock acquisition per
    /// owning region) and decode per user. Results keep the input order;
    /// each user decodes independently, so one torn row degrades only its
    /// own slot.
    pub fn get_users(
        &self,
        table: &RegionedTable,
        users: &[u64],
        as_of: Version,
    ) -> Vec<Result<Option<UserFeatures>, ServeError>> {
        let rows: Vec<RowKey> = users.iter().map(|&u| Self::row_key(u)).collect();
        let batches = table.get_rows(&rows, as_of);
        users
            .iter()
            .zip(&batches)
            .map(|(&user, cells)| self.decode_cells(user, cells))
            .collect()
    }

    /// [`Self::get_user`] through the fault-aware read path: the read goes
    /// to the replica named in `opts`, may fault per the table's installed
    /// [`titant_alihbase::FaultHook`], and reports the simulated latency it
    /// absorbed. A faulted read surfaces as [`ServeError::Fetch`] carrying
    /// the classified [`titant_alihbase::ReadFault`] for the server's
    /// retry/hedge/failover loop.
    pub fn get_user_opts(
        &self,
        table: &RegionedTable,
        user: u64,
        as_of: Version,
        opts: ReadOptions,
    ) -> Result<(Option<UserFeatures>, Duration), ServeError> {
        let row = Self::row_key(user);
        let read = table
            .try_get_row(&row, as_of, opts)
            .map_err(|fault| ServeError::Fetch { user, fault })?;
        Ok((self.decode_cells(user, &read.cells)?, read.waited))
    }

    /// Decode one row's cells into [`UserFeatures`].
    fn decode_cells(
        &self,
        user: u64,
        cells: &[(CellKey, Bytes)],
    ) -> Result<Option<UserFeatures>, ServeError> {
        if cells.is_empty() {
            return Ok(None);
        }
        let mut payer_side = vec![None; self.payer_width];
        let mut receiver_side = vec![None; self.receiver_width];
        let mut embedding = vec![None; self.embedding_dim];
        for (key, bytes) in cells {
            let slot = match key.family.0.as_str() {
                "basic" => match key.qualifier.0.split_at_checked(1) {
                    Some(("p", i)) => i.parse::<usize>().ok().and_then(|i| payer_side.get_mut(i)),
                    Some(("r", i)) => i
                        .parse::<usize>()
                        .ok()
                        .and_then(|i| receiver_side.get_mut(i)),
                    _ => None,
                },
                "embedding" => key
                    .qualifier
                    .0
                    .parse::<usize>()
                    .ok()
                    .and_then(|i| embedding.get_mut(i)),
                _ => None,
            };
            // Unknown families/qualifiers and out-of-range indices are
            // ignored: the layout, not the row, decides what gets served.
            let Some(slot) = slot else { continue };
            let value: [u8; 4] = bytes
                .as_ref()
                .try_into()
                .map_err(|_| ServeError::TornCell {
                    user,
                    column: format!("{}:{}", key.family.0, key.qualifier.0),
                    len: bytes.len(),
                })?;
            *slot = Some(f32::from_le_bytes(value));
        }
        let present = payer_side.iter().flatten().count() + receiver_side.iter().flatten().count();
        let expected = self.payer_width + self.receiver_width;
        if present < expected {
            return Err(ServeError::TornRow {
                user,
                present,
                expected,
            });
        }
        // Any missing embedding dimension downgrades the whole embedding to
        // the zero vector — the cold-start input the models trained on.
        let embedding = if embedding.iter().all(Option::is_some) {
            embedding.into_iter().flatten().collect()
        } else {
            vec![0.0; self.embedding_dim]
        };
        Ok(Some(UserFeatures {
            payer_side: payer_side.into_iter().flatten().collect(),
            receiver_side: receiver_side.into_iter().flatten().collect(),
            embedding,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titant_alihbase::StoreConfig;

    fn codec() -> FeatureCodec {
        FeatureCodec {
            embedding_dim: 4,
            payer_width: 3,
            receiver_width: 2,
        }
    }

    fn table() -> RegionedTable {
        RegionedTable::single(StoreConfig::default()).unwrap()
    }

    fn features(x: f32) -> UserFeatures {
        UserFeatures {
            payer_side: vec![x, x + 1.0, x + 2.0],
            receiver_side: vec![x * 10.0, x * 20.0],
            embedding: vec![x; 4],
        }
    }

    #[test]
    fn put_get_round_trip() {
        let t = table();
        let c = codec();
        c.put_user(&t, 42, &features(1.5), 20170410).unwrap();
        let got = c.get_user(&t, 42, u64::MAX).unwrap().unwrap();
        assert_eq!(got, features(1.5));
        assert!(c.get_user(&t, 99, u64::MAX).unwrap().is_none());
    }

    #[test]
    fn get_user_is_a_single_store_operation() {
        let t = table();
        let c = codec();
        c.put_user(&t, 42, &features(1.5), 20170410).unwrap();
        t.flush().unwrap();
        let before = t.op_counts();
        c.get_user(&t, 42, u64::MAX).unwrap().unwrap();
        let delta = t.op_counts().since(&before);
        assert_eq!(delta.row_gets, 1);
        assert_eq!(
            delta.total(),
            1,
            "fetching a user must not fan out into per-qualifier gets: {delta:?}"
        );
    }

    #[test]
    fn get_users_matches_get_user_per_slot() {
        let t = table();
        let c = codec();
        c.put_user(&t, 1, &features(1.0), 1).unwrap();
        c.put_user(&t, 2, &features(2.0), 1).unwrap();
        t.flush().unwrap();
        // User 3 is torn (one lonely payer cell), user 99 is missing.
        t.put(
            CellKey {
                row: FeatureCodec::row_key(3),
                family: titant_alihbase::ColumnFamily("basic".into()),
                qualifier: titant_alihbase::Qualifier("p0".into()),
            },
            1,
            Bytes::copy_from_slice(&1.0f32.to_le_bytes()),
        )
        .unwrap();
        let before = t.op_counts();
        let got = c.get_users(&t, &[2, 99, 3, 1], u64::MAX);
        let delta = t.op_counts().since(&before);
        assert_eq!(delta.row_gets, 4, "one logical row get per user");
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].as_ref().unwrap(), &Some(features(2.0)));
        assert_eq!(got[1].as_ref().unwrap(), &None);
        assert!(matches!(got[2], Err(ServeError::TornRow { user: 3, .. })));
        assert_eq!(got[3].as_ref().unwrap(), &Some(features(1.0)));
    }

    #[test]
    fn get_user_opts_without_hook_matches_get_user() {
        let t = table();
        let c = codec();
        c.put_user(&t, 42, &features(1.5), 20170410).unwrap();
        let (got, waited) = c
            .get_user_opts(&t, 42, u64::MAX, ReadOptions::default())
            .unwrap();
        assert_eq!(got, c.get_user(&t, 42, u64::MAX).unwrap());
        assert_eq!(waited, Duration::ZERO);
        let (missing, _) = c
            .get_user_opts(&t, 99, u64::MAX, ReadOptions::default())
            .unwrap();
        assert!(missing.is_none());
    }

    #[test]
    fn get_user_opts_surfaces_read_faults_as_fetch_errors() {
        use std::sync::Arc;
        use titant_alihbase::{FaultKind, FaultPlan, FaultPlanConfig};
        let t = table();
        let c = codec();
        c.put_user(&t, 42, &features(1.5), 20170410).unwrap();
        t.set_fault_hook(Some(Arc::new(FaultPlan::new(FaultPlanConfig {
            transient_rate: 1.0,
            ..Default::default()
        }))));
        let err = c
            .get_user_opts(&t, 42, u64::MAX, ReadOptions::default())
            .unwrap_err();
        assert!(
            matches!(
                &err,
                ServeError::Fetch { user: 42, fault } if fault.kind == FaultKind::Transient
            ),
            "{err:?}"
        );
        assert!(err.is_degradable());
        t.set_fault_hook(None);
        assert!(c
            .get_user_opts(&t, 42, u64::MAX, ReadOptions::default())
            .is_ok());
    }

    #[test]
    fn versions_roll_forward_and_back() {
        let t = table();
        let c = codec();
        c.put_user(&t, 7, &features(1.0), 20170410).unwrap();
        c.put_user(&t, 7, &features(2.0), 20170411).unwrap();
        // Latest wins.
        assert_eq!(c.get_user(&t, 7, u64::MAX).unwrap().unwrap(), features(2.0));
        // Yesterday's snapshot still readable (rollback path).
        assert_eq!(c.get_user(&t, 7, 20170410).unwrap().unwrap(), features(1.0));
    }

    #[test]
    fn missing_embedding_decodes_as_zero_vector() {
        let t = table();
        let c = codec();
        let mut f = features(3.0);
        f.embedding.clear();
        c.put_user(
            &t,
            5,
            &UserFeatures {
                embedding: Vec::new(),
                ..f.clone()
            },
            1,
        )
        .unwrap();
        let got = c.get_user(&t, 5, u64::MAX).unwrap().unwrap();
        assert_eq!(got.embedding, vec![0.0; 4]);
        assert_eq!(got.payer_side, f.payer_side);
    }

    #[test]
    fn partial_embedding_also_degrades_to_zero_vector() {
        let t = table();
        let c = codec();
        let mut f = features(3.0);
        f.embedding.truncate(2); // 2 of 4 dims uploaded
        c.put_user(&t, 6, &f, 1).unwrap();
        let got = c.get_user(&t, 6, u64::MAX).unwrap().unwrap();
        assert_eq!(got.embedding, vec![0.0; 4]);
    }

    #[test]
    fn torn_basic_row_is_an_error_not_a_panic() {
        let t = table();
        let c = codec();
        // Only one of three payer cells uploaded: a torn row.
        t.put(
            CellKey {
                row: FeatureCodec::row_key(8),
                family: titant_alihbase::ColumnFamily("basic".into()),
                qualifier: titant_alihbase::Qualifier("p0".into()),
            },
            1,
            Bytes::copy_from_slice(&1.0f32.to_le_bytes()),
        )
        .unwrap();
        let err = c.get_user(&t, 8, u64::MAX).unwrap_err();
        assert!(matches!(
            err,
            ServeError::TornRow {
                user: 8,
                present: 1,
                expected: 5
            }
        ));
        assert!(err.is_degradable());
    }

    #[test]
    fn torn_cell_bytes_are_an_error_not_a_panic() {
        let t = table();
        let c = codec();
        c.put_user(&t, 9, &features(1.0), 1).unwrap();
        // Overwrite one cell with a 3-byte torn value.
        t.put(
            CellKey {
                row: FeatureCodec::row_key(9),
                family: titant_alihbase::ColumnFamily("basic".into()),
                qualifier: titant_alihbase::Qualifier("r1".into()),
            },
            2,
            Bytes::from_static(b"xyz"),
        )
        .unwrap();
        let err = c.get_user(&t, 9, u64::MAX).unwrap_err();
        assert!(
            matches!(&err, ServeError::TornCell { user: 9, column, len: 3 } if column == "basic:r1")
        );
        // The previous intact version remains readable.
        assert_eq!(c.get_user(&t, 9, 1).unwrap().unwrap(), features(1.0));
    }

    #[test]
    fn unknown_qualifiers_are_ignored() {
        let t = table();
        let c = codec();
        c.put_user(&t, 10, &features(2.0), 1).unwrap();
        for (family, qualifier) in [("basic", "x9"), ("basic", "p99"), ("audit", "note")] {
            t.put(
                CellKey {
                    row: FeatureCodec::row_key(10),
                    family: titant_alihbase::ColumnFamily(family.into()),
                    qualifier: titant_alihbase::Qualifier(qualifier.into()),
                },
                1,
                Bytes::from_static(b"whatever"),
            )
            .unwrap();
        }
        assert_eq!(
            c.get_user(&t, 10, u64::MAX).unwrap().unwrap(),
            features(2.0)
        );
    }
}
