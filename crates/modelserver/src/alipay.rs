//! The simulated Alipay front end (Figure 5's left side).
//!
//! Drives transfer requests through the Model Server and interrupts the
//! on-going transaction when the MS raises an alert, notifying the
//! transferor — "the transaction TID=2 is probably a fraud … thus MS sends
//! an alert to the Alipay server, which will further interrupt the
//! corresponding on-going transaction".

use crate::error::ServeError;
use crate::server::{ModelServer, ScoreRequest};
use parking_lot::Mutex;

/// What happened to one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// Completed normally.
    Completed,
    /// Interrupted by a fraud alert; the transferor was notified.
    Interrupted,
}

/// Aggregate statistics of a serving session.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    pub completed: usize,
    pub interrupted: usize,
    pub notifications_sent: usize,
    /// Requests the MS rejected (malformed); the transfer was neither
    /// completed nor interrupted by scoring.
    pub score_errors: usize,
    /// Transfers scored in degraded (context-only) mode.
    pub degraded: usize,
    /// Transfers whose deadline budget ran out before scoring (counted
    /// separately from `score_errors` — the request was well-formed).
    pub deadline_exceeded: usize,
}

/// The Alipay server simulation.
pub struct AlipayServer {
    ms: ModelServer,
    stats: Mutex<SessionStats>,
}

impl AlipayServer {
    /// Wire the front end to a model server.
    pub fn new(ms: ModelServer) -> Self {
        Self {
            ms,
            stats: Mutex::new(SessionStats::default()),
        }
    }

    /// Process one transfer request end to end. A malformed request is
    /// returned as the scoring error instead of taking the front end down;
    /// the caller decides its business outcome (Alipay would complete the
    /// transfer rather than block on an internal error).
    pub fn transfer(&self, req: ScoreRequest) -> Result<TransferOutcome, ServeError> {
        match self.ms.score(&req) {
            Ok(resp) => {
                let mut stats = self.stats.lock();
                if resp.degraded {
                    stats.degraded += 1;
                }
                if resp.alert {
                    stats.interrupted += 1;
                    stats.notifications_sent += 1; // notify the transferor
                    Ok(TransferOutcome::Interrupted)
                } else {
                    stats.completed += 1;
                    Ok(TransferOutcome::Completed)
                }
            }
            Err(e) => {
                if matches!(e, ServeError::DeadlineExceeded { .. }) {
                    self.stats.lock().deadline_exceeded += 1;
                } else {
                    self.stats.lock().score_errors += 1;
                }
                Err(e)
            }
        }
    }

    /// Session statistics so far.
    pub fn stats(&self) -> SessionStats {
        *self.stats.lock()
    }

    /// The underlying model server (latency inspection, hot swaps).
    pub fn model_server(&self) -> &ModelServer {
        &self.ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature_codec::{FeatureCodec, UserFeatures};
    use crate::model_file::{ModelFile, ServableModel};
    use crate::server::FeatureLayout;
    use std::sync::Arc;
    use titant_alihbase::{RegionedTable, StoreConfig};
    use titant_models::{Dataset, GbdtConfig};

    fn alipay() -> AlipayServer {
        let layout = FeatureLayout {
            n_basic: 3,
            payer_slots: vec![0],
            receiver_slots: vec![1],
            context_slots: vec![2],
            embedding_dim: 0,
            velocity_width: 0,
        };
        let mut d = Dataset::new(3);
        let mut state = 11u64;
        let mut rand01 = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f32 / (1u64 << 31) as f32
        };
        for _ in 0..300 {
            let row = [rand01(), rand01(), rand01()];
            d.push_row(&row, (row[2] > 0.5) as u8 as f32);
        }
        let model = ModelFile {
            version: 1,
            alert_threshold: 0.5,
            n_features: 3,
            model: ServableModel::Gbdt(
                GbdtConfig {
                    n_trees: 20,
                    subsample: 1.0,
                    colsample: 1.0,
                    ..Default::default()
                }
                .fit(&d),
            ),
        };
        let table = Arc::new(RegionedTable::single(StoreConfig::default()).unwrap());
        let codec = FeatureCodec {
            embedding_dim: 0,
            payer_width: 1,
            receiver_width: 1,
            velocity_width: 0,
        };
        for u in [1u64, 2] {
            codec
                .put_user(
                    &table,
                    u,
                    &UserFeatures {
                        payer_side: vec![0.5],
                        receiver_side: vec![0.5],
                        embedding: vec![],
                        velocity: Vec::new(),
                    },
                    1,
                )
                .unwrap();
        }
        AlipayServer::new(ModelServer::new(table, layout, model).unwrap())
    }

    fn req(tx_id: u64, context: f32) -> ScoreRequest {
        ScoreRequest {
            tx_id,
            transferor: 1,
            transferee: 2,
            context: vec![context],
        }
    }

    #[test]
    fn fraudulent_transfer_is_interrupted_with_notification() {
        let server = alipay();
        assert_eq!(
            server.transfer(req(1, 0.95)),
            Ok(TransferOutcome::Interrupted)
        );
        assert_eq!(
            server.transfer(req(2, 0.05)),
            Ok(TransferOutcome::Completed)
        );
        let stats = server.stats();
        assert_eq!(stats.interrupted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.notifications_sent, 1);
        assert_eq!(stats.score_errors, 0);
    }

    #[test]
    fn malformed_transfer_is_an_error_and_counted() {
        let server = alipay();
        let bad = ScoreRequest {
            tx_id: 3,
            transferor: 1,
            transferee: 2,
            context: vec![0.1, 0.2],
        };
        assert!(server.transfer(bad).is_err());
        let stats = server.stats();
        assert_eq!(stats.score_errors, 1);
        assert_eq!(stats.completed + stats.interrupted, 0);
        // The front end keeps serving afterwards.
        assert_eq!(
            server.transfer(req(4, 0.05)),
            Ok(TransferOutcome::Completed)
        );
    }

    #[test]
    fn latency_is_recorded_per_transfer() {
        let server = alipay();
        for i in 0..10 {
            server.transfer(req(i, 0.3)).unwrap();
        }
        assert_eq!(server.model_server().latency().count(), 10);
        // Serving is comfortably sub-millisecond at this scale; the paper's
        // bound is tens of milliseconds.
        let p99 = server.model_server().latency().quantile(0.99).unwrap();
        assert!(p99 < std::time::Duration::from_millis(50), "p99 {p99:?}");
    }
}
