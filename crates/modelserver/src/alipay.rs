//! The simulated Alipay front end (Figure 5's left side).
//!
//! Drives transfer requests through the Model Server and interrupts the
//! on-going transaction when the MS raises an alert, notifying the
//! transferor — "the transaction TID=2 is probably a fraud … thus MS sends
//! an alert to the Alipay server, which will further interrupt the
//! corresponding on-going transaction".

use crate::server::{ModelServer, ScoreRequest};
use parking_lot::Mutex;

/// What happened to one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// Completed normally.
    Completed,
    /// Interrupted by a fraud alert; the transferor was notified.
    Interrupted,
}

/// Aggregate statistics of a serving session.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    pub completed: usize,
    pub interrupted: usize,
    pub notifications_sent: usize,
}

/// The Alipay server simulation.
pub struct AlipayServer {
    ms: ModelServer,
    stats: Mutex<SessionStats>,
}

impl AlipayServer {
    /// Wire the front end to a model server.
    pub fn new(ms: ModelServer) -> Self {
        Self {
            ms,
            stats: Mutex::new(SessionStats::default()),
        }
    }

    /// Process one transfer request end to end.
    pub fn transfer(&self, req: ScoreRequest) -> TransferOutcome {
        let resp = self.ms.score(&req);
        let mut stats = self.stats.lock();
        if resp.alert {
            stats.interrupted += 1;
            stats.notifications_sent += 1; // notify the transferor
            TransferOutcome::Interrupted
        } else {
            stats.completed += 1;
            TransferOutcome::Completed
        }
    }

    /// Session statistics so far.
    pub fn stats(&self) -> SessionStats {
        *self.stats.lock()
    }

    /// The underlying model server (latency inspection, hot swaps).
    pub fn model_server(&self) -> &ModelServer {
        &self.ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature_codec::{FeatureCodec, UserFeatures};
    use crate::model_file::{ModelFile, ServableModel};
    use crate::server::FeatureLayout;
    use std::sync::Arc;
    use titant_alihbase::{RegionedTable, StoreConfig};
    use titant_models::{Dataset, GbdtConfig};

    fn alipay() -> AlipayServer {
        let layout = FeatureLayout {
            n_basic: 3,
            payer_slots: vec![0],
            receiver_slots: vec![1],
            context_slots: vec![2],
            embedding_dim: 0,
        };
        let mut d = Dataset::new(3);
        let mut state = 11u64;
        let mut rand01 = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f32 / (1u64 << 31) as f32
        };
        for _ in 0..300 {
            let row = [rand01(), rand01(), rand01()];
            d.push_row(&row, (row[2] > 0.5) as u8 as f32);
        }
        let model = ModelFile {
            version: 1,
            alert_threshold: 0.5,
            n_features: 3,
            model: ServableModel::Gbdt(
                GbdtConfig {
                    n_trees: 20,
                    subsample: 1.0,
                    colsample: 1.0,
                    ..Default::default()
                }
                .fit(&d),
            ),
        };
        let table = Arc::new(RegionedTable::single(StoreConfig::default()).unwrap());
        let codec = FeatureCodec {
            embedding_dim: 0,
            payer_width: 1,
            receiver_width: 1,
        };
        for u in [1u64, 2] {
            codec
                .put_user(
                    &table,
                    u,
                    &UserFeatures {
                        payer_side: vec![0.5],
                        receiver_side: vec![0.5],
                        embedding: vec![],
                    },
                    1,
                )
                .unwrap();
        }
        AlipayServer::new(ModelServer::new(table, layout, model))
    }

    fn req(tx_id: u64, context: f32) -> ScoreRequest {
        ScoreRequest {
            tx_id,
            transferor: 1,
            transferee: 2,
            context: vec![context],
        }
    }

    #[test]
    fn fraudulent_transfer_is_interrupted_with_notification() {
        let server = alipay();
        assert_eq!(server.transfer(req(1, 0.95)), TransferOutcome::Interrupted);
        assert_eq!(server.transfer(req(2, 0.05)), TransferOutcome::Completed);
        let stats = server.stats();
        assert_eq!(stats.interrupted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.notifications_sent, 1);
    }

    #[test]
    fn latency_is_recorded_per_transfer() {
        let server = alipay();
        for i in 0..10 {
            server.transfer(req(i, 0.3));
        }
        assert_eq!(server.model_server().latency().count(), 10);
        // Serving is comfortably sub-millisecond at this scale; the paper's
        // bound is tens of milliseconds.
        let p99 = server.model_server().latency().quantile(0.99).unwrap();
        assert!(p99 < std::time::Duration::from_millis(50), "p99 {p99:?}");
    }
}
