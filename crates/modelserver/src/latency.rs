//! Latency recording for the serving path.

use parking_lot::Mutex;
use std::time::Duration;

/// Collects per-request latencies and reports quantiles. Lock-guarded; the
/// recording cost is nanoseconds against a microseconds-scale request.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    samples: Mutex<Vec<u64>>, // nanoseconds
}

impl LatencyRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one request latency.
    pub fn record(&self, d: Duration) {
        self.samples.lock().push(d.as_nanos() as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.lock().len()
    }

    /// Quantile in `[0, 1]` (nearest-rank); `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let mut s = self.samples.lock().clone();
        if s.is_empty() {
            return None;
        }
        s.sort_unstable();
        let idx = ((s.len() as f64 * q).ceil() as usize).clamp(1, s.len()) - 1;
        Some(Duration::from_nanos(s[idx]))
    }

    /// Mean latency; `None` when empty.
    pub fn mean(&self) -> Option<Duration> {
        let s = self.samples.lock();
        if s.is_empty() {
            return None;
        }
        Some(Duration::from_nanos(
            s.iter().sum::<u64>() / s.len() as u64,
        ))
    }

    /// Clear all samples.
    pub fn reset(&self) {
        self.samples.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_distribution() {
        let r = LatencyRecorder::new();
        for ms in 1..=100u64 {
            r.record(Duration::from_millis(ms));
        }
        assert_eq!(r.quantile(0.5).unwrap(), Duration::from_millis(50));
        assert_eq!(r.quantile(0.99).unwrap(), Duration::from_millis(99));
        assert_eq!(r.quantile(1.0).unwrap(), Duration::from_millis(100));
        assert_eq!(r.count(), 100);
        assert_eq!(r.mean().unwrap(), Duration::from_micros(50_500));
    }

    #[test]
    fn empty_recorder_returns_none() {
        let r = LatencyRecorder::new();
        assert!(r.quantile(0.5).is_none());
        assert!(r.mean().is_none());
    }

    #[test]
    fn reset_clears() {
        let r = LatencyRecorder::new();
        r.record(Duration::from_millis(1));
        r.reset();
        assert_eq!(r.count(), 0);
    }
}
