//! Per-stage latency recording for the serving path.
//!
//! A fixed-size log-bucketed histogram per pipeline stage: nanosecond
//! values below 16 map to exact buckets; above that each power-of-two
//! octave splits into 16 sub-buckets, so the relative quantisation error is
//! bounded by 1/16 (~6.25%) regardless of magnitude. All counters are
//! relaxed atomics — recording is wait-free, memory is O(1) in the request
//! count (≈31 KiB total), and quantile reads never clone sample vectors
//! under a lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per octave (power of two; 16 → ≤6.25% bucket error).
const SUB: u64 = 16;
/// log2(SUB).
const SUB_BITS: u64 = 4;
/// Bucket count: exact buckets for values < 16, then 16 per octave up to
/// the top of the u64 range.
const N_BUCKETS: usize = ((64 - 3) * SUB) as usize;

/// Bucket index of a nanosecond value.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let e = 63 - u64::from(v.leading_zeros());
    let sub = (v >> (e - SUB_BITS)) & (SUB - 1);
    ((e - SUB_BITS + 1) * SUB + sub) as usize
}

/// Representative (midpoint) nanosecond value of a bucket.
fn bucket_value(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let e = idx / SUB + SUB_BITS - 1;
    let sub = idx % SUB;
    let lo = (1u128 << e) + (u128::from(sub) << (e - SUB_BITS));
    let hi = lo + (1u128 << (e - SUB_BITS));
    ((lo + hi - 1) / 2) as u64
}

/// The serving-pipeline stages the recorder distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Ali-HBase feature fetch for both transfer parties.
    Fetch,
    /// Feature-vector assembly.
    Assemble,
    /// Model evaluation.
    Predict,
    /// The whole request, fetch through verdict.
    Total,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 4] = [Stage::Fetch, Stage::Assemble, Stage::Predict, Stage::Total];

    fn idx(self) -> usize {
        match self {
            Stage::Fetch => 0,
            Stage::Assemble => 1,
            Stage::Predict => 2,
            Stage::Total => 3,
        }
    }
}

struct StageHist {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl StageHist {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Collects per-request, per-stage latencies and reports quantiles.
pub struct LatencyRecorder {
    stages: [StageHist; 4],
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyRecorder")
            .field("count", &self.count())
            .finish()
    }
}

impl LatencyRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self {
            stages: [
                StageHist::new(),
                StageHist::new(),
                StageHist::new(),
                StageHist::new(),
            ],
        }
    }

    /// Record one whole-request latency ([`Stage::Total`]).
    pub fn record(&self, d: Duration) {
        self.record_stage(Stage::Total, d);
    }

    /// Record a latency against one stage.
    pub fn record_stage(&self, stage: Stage, d: Duration) {
        self.stages[stage.idx()].record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of whole requests recorded.
    pub fn count(&self) -> usize {
        self.stage_count(Stage::Total)
    }

    /// Number of samples recorded for one stage.
    pub fn stage_count(&self, stage: Stage) -> usize {
        self.stages[stage.idx()].count.load(Ordering::Relaxed) as usize
    }

    /// Whole-request quantile (nearest-rank, out-of-range `q` clamped to
    /// `[0, 1]`); `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        self.stage_quantile(Stage::Total, q)
    }

    /// Per-stage quantile; `None` when the stage has no samples.
    pub fn stage_quantile(&self, stage: Stage, q: f64) -> Option<Duration> {
        self.stages[stage.idx()].snapshot().quantile(q)
    }

    /// Whole-request mean; `None` when empty. The sum and count are exact,
    /// so the mean is not subject to bucket quantisation; the division
    /// rounds to nearest instead of truncating.
    pub fn mean(&self) -> Option<Duration> {
        self.stage_mean(Stage::Total)
    }

    /// Per-stage mean; `None` when the stage has no samples.
    pub fn stage_mean(&self, stage: Stage) -> Option<Duration> {
        self.stages[stage.idx()].snapshot().mean()
    }

    /// Clear all stages.
    pub fn reset(&self) {
        for s in &self.stages {
            s.reset();
        }
    }

    /// A point-in-time copy of every stage's histogram. Pair two snapshots
    /// with [`LatencySnapshot::since`] to get interval statistics that
    /// earlier traffic cannot pollute.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            stages: [
                self.stages[0].snapshot(),
                self.stages[1].snapshot(),
                self.stages[2].snapshot(),
                self.stages[3].snapshot(),
            ],
        }
    }
}

/// One stage's frozen histogram.
#[derive(Debug, Clone)]
pub struct StageSnapshot {
    count: u64,
    sum: u64,
    buckets: Vec<u64>,
}

impl StageSnapshot {
    /// Sample count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Nearest-rank quantile over the bucketed samples; the returned value
    /// is the midpoint of the bucket holding the ranked sample (≤ ~6.25%
    /// relative error). Out-of-range `q` is clamped; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest rank: smallest k with cumulative count ≥ ceil(q·n),
        // clamped to [1, n] so q = 0 is the minimum and q = 1 the maximum.
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return Some(Duration::from_nanos(bucket_value(idx)));
            }
        }
        None
    }

    /// Exact mean (sum and count are tracked outside the buckets), rounded
    /// to the nearest nanosecond; `None` when empty.
    pub fn mean(&self) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let sum = u128::from(self.sum);
        let count = u128::from(self.count);
        Some(Duration::from_nanos(((sum + count / 2) / count) as u64))
    }

    /// Counter delta since an earlier snapshot of the same stage.
    pub fn since(&self, earlier: &StageSnapshot) -> StageSnapshot {
        StageSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
        }
    }
}

/// A frozen copy of all four stage histograms.
#[derive(Debug, Clone)]
pub struct LatencySnapshot {
    stages: [StageSnapshot; 4],
}

impl LatencySnapshot {
    /// One stage's snapshot.
    pub fn stage(&self, stage: Stage) -> &StageSnapshot {
        &self.stages[stage.idx()]
    }

    /// Delta of every stage since an earlier snapshot — the statistics of
    /// exactly the traffic between the two snapshots.
    pub fn since(&self, earlier: &LatencySnapshot) -> LatencySnapshot {
        LatencySnapshot {
            stages: [
                self.stages[0].since(&earlier.stages[0]),
                self.stages[1].since(&earlier.stages[1]),
                self.stages[2].since(&earlier.stages[2]),
                self.stages[3].since(&earlier.stages[3]),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Allowed relative error: bucket midpoints sit within half a bucket
    /// (≤1/32) of the true value; leave headroom up to the full 1/16.
    fn close(approx: Duration, exact: Duration) {
        let (a, e) = (approx.as_nanos() as f64, exact.as_nanos() as f64);
        assert!(
            (a - e).abs() <= e / 16.0 + 1.0,
            "approx {approx:?} vs exact {exact:?}"
        );
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let r = LatencyRecorder::new();
        for ms in 1..=100u64 {
            r.record(Duration::from_millis(ms));
        }
        close(r.quantile(0.5).unwrap(), Duration::from_millis(50));
        close(r.quantile(0.99).unwrap(), Duration::from_millis(99));
        close(r.quantile(1.0).unwrap(), Duration::from_millis(100));
        close(r.quantile(0.0).unwrap(), Duration::from_millis(1));
        assert_eq!(r.count(), 100);
        // Mean is exact: buckets only quantise quantiles.
        assert_eq!(r.mean().unwrap(), Duration::from_micros(50_500));
    }

    #[test]
    fn empty_recorder_returns_none() {
        let r = LatencyRecorder::new();
        assert!(r.quantile(0.5).is_none());
        assert!(r.mean().is_none());
        for s in Stage::ALL {
            assert!(r.stage_quantile(s, 0.5).is_none());
            assert!(r.stage_mean(s).is_none());
        }
    }

    #[test]
    fn reset_clears() {
        let r = LatencyRecorder::new();
        r.record(Duration::from_millis(1));
        r.record_stage(Stage::Fetch, Duration::from_micros(3));
        r.reset();
        assert_eq!(r.count(), 0);
        assert_eq!(r.stage_count(Stage::Fetch), 0);
    }

    #[test]
    fn stages_record_independently() {
        let r = LatencyRecorder::new();
        r.record_stage(Stage::Fetch, Duration::from_micros(10));
        r.record_stage(Stage::Fetch, Duration::from_micros(20));
        r.record_stage(Stage::Predict, Duration::from_micros(100));
        assert_eq!(r.stage_count(Stage::Fetch), 2);
        assert_eq!(r.stage_count(Stage::Predict), 1);
        assert_eq!(r.count(), 0, "stage samples must not count as requests");
        assert_eq!(
            r.stage_mean(Stage::Fetch).unwrap(),
            Duration::from_micros(15)
        );
        close(
            r.stage_quantile(Stage::Predict, 0.5).unwrap(),
            Duration::from_micros(100),
        );
    }

    #[test]
    fn snapshot_delta_isolates_an_interval() {
        let r = LatencyRecorder::new();
        // Pollute with slow "warm-up" traffic.
        for _ in 0..50 {
            r.record(Duration::from_millis(500));
        }
        let before = r.snapshot();
        for _ in 0..100 {
            r.record(Duration::from_micros(100));
        }
        let delta = r.snapshot().since(&before).stage(Stage::Total).clone();
        assert_eq!(delta.count(), 100);
        close(delta.quantile(0.99).unwrap(), Duration::from_micros(100));
        assert_eq!(delta.mean().unwrap(), Duration::from_micros(100));
        // Lifetime view still sees the warm-up tail.
        assert!(r.quantile(0.99).unwrap() > Duration::from_millis(100));
    }

    #[test]
    fn mean_rounds_to_nearest_instead_of_truncating() {
        let r = LatencyRecorder::new();
        r.record(Duration::from_nanos(1));
        r.record(Duration::from_nanos(2));
        // 1.5ns rounds to 2, not down to 1.
        assert_eq!(r.mean().unwrap(), Duration::from_nanos(2));
    }

    #[test]
    fn bucket_index_and_value_are_consistent() {
        for v in (0..200u64).chain([1_000, 65_535, 1 << 20, u64::MAX - 1, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(idx < N_BUCKETS, "v={v} idx={idx}");
            let rep = bucket_value(idx);
            // The representative lives in the same bucket as the value.
            assert_eq!(bucket_index(rep), idx, "v={v} rep={rep}");
            if v >= 16 {
                let rel = (rep as f64 - v as f64).abs() / v as f64;
                assert!(rel <= 1.0 / 16.0, "v={v} rep={rep} rel={rel}");
            } else {
                assert_eq!(rep, v);
            }
        }
    }

    proptest! {
        /// Nearest-rank quantiles through the histogram stay within one
        /// bucket (≤1/16 relative error) of the exact nearest-rank sample,
        /// across arbitrary sample sets and quantiles — including q = 0,
        /// q = 1, and single-sample recorders.
        #[test]
        fn quantile_tracks_exact_nearest_rank(
            samples in proptest::collection::vec(1u64..10_000_000_000, 1..200),
            q_mille in 0u64..=1000,
        ) {
            let q = q_mille as f64 / 1000.0;
            let r = LatencyRecorder::new();
            for &s in &samples {
                r.record(Duration::from_nanos(s));
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let got = r.quantile(q).unwrap().as_nanos() as u64;
            let err = (got as f64 - exact as f64).abs();
            prop_assert!(
                err <= exact as f64 / 16.0 + 1.0,
                "q={} exact={} got={}", q, exact, got
            );
        }
    }
}
