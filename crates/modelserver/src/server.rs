//! The Model Server: feature fetch + scoring + hot model swap + load
//! handling.
//!
//! The serving path is panic-free by construction: malformed requests are
//! rejected with a typed [`ServeError`], feature-store trouble degrades to
//! context-only scoring (counted, never fatal), and pool workers survive
//! poisoned requests and report them through an error callback.

use crate::error::ServeError;
use crate::feature_codec::{FeatureCodec, FeatureDelta, UserFeatures};
use crate::latency::{LatencyRecorder, Stage};
use crate::model_file::ModelFile;
use crate::row_cache::{RowCache, RowCacheConfig, RowCacheStats};
use crate::slo::{Deadline, ReqRng, ResilienceCounters, ResilienceSnapshot, SloConfig};
use crossbeam::channel::{bounded, SendError, Sender, TrySendError};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use titant_alihbase::{
    FaultKind, ReadOptions, RegionedTable, ReopenReport, Version, WriteFaultKind, WriteOptions,
    WriteStatsSnapshot,
};
use titant_models::{Classifier, Dataset};

/// A scoring request: the two transfer parties plus the per-transaction
/// context features the Alipay server computes at request time.
#[derive(Debug, Clone)]
pub struct ScoreRequest {
    pub tx_id: u64,
    pub transferor: u64,
    pub transferee: u64,
    pub context: Vec<f32>,
}

/// The MS verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreResponse {
    pub tx_id: u64,
    /// Predicted fraud probability.
    pub probability: f32,
    /// True when the transaction should be interrupted.
    pub alert: bool,
    /// True when user features could not be fetched intact and the score
    /// fell back to context-only input (zero-filled user slots).
    pub degraded: bool,
}

/// Outcome of one [`ModelServer::ingest_update`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Distinct users patched.
    pub users: usize,
    /// Cells written across all deltas.
    pub cells: usize,
    /// Cached decoded rows dropped by the per-user invalidation.
    pub invalidated_rows: usize,
    /// Simulated WAL group-commit wait charged to this batch.
    pub simulated_wait: Duration,
    /// Background compactions performed by the post-ingest tick.
    pub compactions: u64,
    /// Regions split by the post-ingest tick (at most 1 per call; only
    /// under an active [`titant_alihbase::SplitConfig`]).
    pub region_splits: u64,
    /// Cold sibling regions merged by the post-ingest tick.
    pub region_merges: u64,
    /// Write attempts beyond the first this batch needed against injected
    /// write faults (failed appends/fsyncs, power loss) before it was
    /// acknowledged.
    pub write_retries: u64,
}

/// Per-call options for [`ModelServer::ingest_update_opts`].
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestOptions {
    /// Logical time of the write (e.g. the batch sequence number),
    /// forwarded to the table's write-fault hook so fault schedules vary
    /// across a workload and across retry attempts deterministically.
    pub tick: u64,
}

/// The serving feature layout: where user-side and context features land in
/// the model's input vector. Must match the training-time column order.
#[derive(Debug, Clone)]
pub struct FeatureLayout {
    /// Width of the basic block (52 in the paper).
    pub n_basic: usize,
    /// Indices of the payer-side values within the basic block.
    pub payer_slots: Vec<usize>,
    /// Indices of the receiver-side values within the basic block.
    pub receiver_slots: Vec<usize>,
    /// Indices of the context values within the basic block.
    pub context_slots: Vec<usize>,
    /// Embedding dims appended per party (0 = model without embeddings).
    pub embedding_dim: usize,
    /// Streaming velocity slots appended per party after the embeddings
    /// (0 = model without streaming features). Populated by the windowed
    /// aggregator in `titant-stream` via `ingest_update`.
    pub velocity_width: usize,
}

impl FeatureLayout {
    /// Total model input width: the basic block, then per-party embedding
    /// blocks, then per-party velocity blocks.
    pub fn width(&self) -> usize {
        self.n_basic + 2 * self.embedding_dim + 2 * self.velocity_width
    }

    /// Check slot coverage: payer + receiver + context slots must cover the
    /// basic block exactly and stay inside it.
    fn validate(&self) -> Result<(), ServeError> {
        let covered = self.payer_slots.len() + self.receiver_slots.len() + self.context_slots.len();
        let in_range = self
            .payer_slots
            .iter()
            .chain(&self.receiver_slots)
            .chain(&self.context_slots)
            .all(|&s| s < self.n_basic);
        if covered != self.n_basic || !in_range {
            return Err(ServeError::LayoutSlots {
                covered,
                n_basic: self.n_basic,
            });
        }
        Ok(())
    }
}

/// A model server instance. Cheap to clone (shared internals) — clones act
/// as additional serving replicas over the same store and model.
#[derive(Clone)]
pub struct ModelServer {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ModelServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelServer")
            .field("model_version", &self.inner.model.read().version)
            .field("width", &self.inner.layout.width())
            .finish_non_exhaustive()
    }
}

struct Inner {
    model: RwLock<Arc<ModelFile>>,
    table: Arc<RegionedTable>,
    codec: FeatureCodec,
    layout: FeatureLayout,
    latency: LatencyRecorder,
    slo: SloConfig,
    resilience: ResilienceCounters,
    /// Requests served context-only because a party's features could not
    /// be fetched intact.
    degraded: AtomicU64,
    /// Optional decoded-row cache in front of the feature fetch. Off by
    /// default: the chaos-replay guarantees assume every read consults the
    /// store, so the cache is opt-in via [`ModelServer::with_options`].
    cache: Option<RowCache>,
}

impl ModelServer {
    /// Create a server over a feature table with an initial model. Fails
    /// when the model width does not match the layout or the layout's
    /// slots do not cover the basic block.
    pub fn new(
        table: Arc<RegionedTable>,
        layout: FeatureLayout,
        model: ModelFile,
    ) -> Result<Self, ServeError> {
        Self::with_slo(table, layout, model, SloConfig::default())
    }

    /// [`Self::new`] with explicit serving SLOs: a per-request deadline
    /// budget, a retry policy for transient storage faults, and an optional
    /// hedge policy (effective only when the table has read replicas).
    pub fn with_slo(
        table: Arc<RegionedTable>,
        layout: FeatureLayout,
        model: ModelFile,
        slo: SloConfig,
    ) -> Result<Self, ServeError> {
        Self::with_options(table, layout, model, slo, None)
    }

    /// [`Self::with_slo`] plus an optional decoded-row cache in front of the
    /// feature fetch. The cache trades staleness risk for latency, so it is
    /// opt-in; it is cleared on every [`Self::deploy`] and callers that
    /// upload a new feature version must call
    /// [`Self::invalidate_row_cache`]. Degraded (torn/faulted) reads are
    /// never cached.
    pub fn with_options(
        table: Arc<RegionedTable>,
        layout: FeatureLayout,
        model: ModelFile,
        slo: SloConfig,
        cache: Option<RowCacheConfig>,
    ) -> Result<Self, ServeError> {
        layout.validate()?;
        if model.n_features != layout.width() {
            return Err(ServeError::ModelWidth {
                expected: layout.width(),
                got: model.n_features,
            });
        }
        let codec = FeatureCodec {
            embedding_dim: layout.embedding_dim,
            payer_width: layout.payer_slots.len(),
            receiver_width: layout.receiver_slots.len(),
            velocity_width: layout.velocity_width,
        };
        Ok(Self {
            inner: Arc::new(Inner {
                model: RwLock::new(Arc::new(model)),
                table,
                codec,
                layout,
                latency: LatencyRecorder::new(),
                slo,
                resilience: ResilienceCounters::default(),
                degraded: AtomicU64::new(0),
                cache: cache.map(RowCache::new),
            }),
        })
    }

    /// Hot-swap the served model ("model files are periodically updated").
    /// In-flight requests keep the old model; new requests see the new one.
    /// A model that does not match the layout is rejected **without
    /// unseating the live model**.
    pub fn deploy(&self, model: ModelFile) -> Result<(), ServeError> {
        if model.n_features != self.inner.layout.width() {
            return Err(ServeError::ModelWidth {
                expected: self.inner.layout.width(),
                got: model.n_features,
            });
        }
        *self.inner.model.write() = Arc::new(model);
        // A new model version may come with a new feature snapshot; drop
        // every cached decode so stale rows cannot outlive the deploy.
        self.invalidate_row_cache();
        Ok(())
    }

    /// Drop every cached decoded row. Must be called after uploading a new
    /// feature version outside [`Self::deploy`]; cached decodes are only
    /// valid for an immutable feature snapshot. No-op without a cache.
    pub fn invalidate_row_cache(&self) {
        if let Some(cache) = &self.inner.cache {
            cache.clear();
        }
    }

    /// Row-cache counters, when a cache is configured.
    pub fn row_cache_stats(&self) -> Option<RowCacheStats> {
        self.inner.cache.as_ref().map(|c| c.stats())
    }

    /// Crash-restart the feature table in place: discard every volatile
    /// structure and rebuild all regions and replicas from their on-disk
    /// dirs via [`RegionedTable::reopen`], then drop the decoded-row cache
    /// — cached decodes must not outlive the stores they were decoded
    /// from. Acknowledged (flushed or WAL-synced) writes survive; scores
    /// served afterwards are identical to the pre-crash acknowledged
    /// state.
    pub fn recover_table(&self) -> Result<ReopenReport, ServeError> {
        let report = self.inner.table.reopen().map_err(|e| ServeError::Ingest {
            message: e.to_string(),
        })?;
        self.invalidate_row_cache();
        Ok(report)
    }

    /// Physical write/durability counters of the underlying feature table
    /// (WAL appends/syncs, injected failures, power-loss recoveries,
    /// orphans swept on open).
    pub fn write_stats(&self) -> WriteStatsSnapshot {
        self.inner.table.write_stats()
    }

    /// Apply a batch of streaming per-user feature deltas at `version`.
    ///
    /// This is the online half of the write path: instead of waiting for
    /// the next full T+1 upload, a correction job patches a handful of
    /// qualifiers per user. The whole call goes through
    /// [`RegionedTable::put_rows`] — one lock acquisition and one WAL frame
    /// per owning region, all-or-nothing on crash replay — and then drives
    /// one deterministic [`RegionedTable::tick`] so background compaction
    /// and any open group-commit window make progress on the writer's
    /// cadence, not a wall clock.
    ///
    /// Cache coherence is surgical: only the patched users' decoded rows
    /// are invalidated, so the rest of the cache stays hot. Every delta is
    /// validated against the layout before anything is written; a bad index
    /// rejects the whole call with [`ServeError::DeltaSlot`].
    pub fn ingest_update(
        &self,
        deltas: &[FeatureDelta],
        version: Version,
    ) -> Result<IngestReport, ServeError> {
        self.ingest_update_opts(deltas, version, IngestOptions::default())
    }

    /// [`Self::ingest_update`] with explicit [`IngestOptions`] — the entry
    /// point the crash bench uses to thread a logical tick into the
    /// table's write-fault hook.
    ///
    /// The write goes through a bounded retry loop governed by the same
    /// [`crate::slo::RetryPolicy`] and simulated-time deadline budget as
    /// the read path: an injected write fault (failed append, failed
    /// fsync, power loss) charges its simulated wait, backs off with
    /// decorrelated jitter from a seeded RNG, and retries with a bumped
    /// attempt number — rewriting identical cells is idempotent, so a
    /// retry after an ambiguous fsync failure is safe. Exhausting the
    /// retry budget (or the deadline) returns
    /// [`ServeError::IngestRetriesExhausted`]; a real (non-injected) I/O
    /// error is not retried and returns [`ServeError::Ingest`].
    pub fn ingest_update_opts(
        &self,
        deltas: &[FeatureDelta],
        version: Version,
        opts: IngestOptions,
    ) -> Result<IngestReport, ServeError> {
        let inner = &self.inner;
        let codec = &inner.codec;
        for d in deltas {
            let checks = [
                ("payer", &d.payer, codec.payer_width),
                ("receiver", &d.receiver, codec.receiver_width),
                ("embedding", &d.embedding, codec.embedding_dim),
                ("velocity", &d.velocity, codec.velocity_width),
            ];
            for (block, updates, width) in checks {
                if let Some(&(index, _)) = updates.iter().find(|&&(i, _)| i >= width) {
                    return Err(ServeError::DeltaSlot {
                        user: d.user,
                        block,
                        index,
                        width,
                    });
                }
            }
        }
        let store_err = |e: std::io::Error| ServeError::Ingest {
            message: e.to_string(),
        };
        let mut users: BTreeSet<u64> = BTreeSet::new();
        let mut cells = Vec::with_capacity(deltas.iter().map(FeatureDelta::len).sum());
        for d in deltas {
            if d.is_empty() {
                continue;
            }
            users.insert(d.user);
            cells.extend(codec.encode_delta(d, version));
        }
        let n_cells = cells.len();
        let mut report = IngestReport {
            users: users.len(),
            cells: n_cells,
            ..IngestReport::default()
        };
        if n_cells > 0 {
            // Bounded write retry under the serving SLO's simulated-time
            // budget. Jitter is seeded from (slo seed, logical tick) so the
            // same fault plan replays the same retry schedule bit-for-bit.
            let mut deadline = Deadline::new(inner.slo.deadline);
            let mut rng = ReqRng::new(inner.slo.seed ^ opts.tick.rotate_left(17) ^ 0x7772_6974);
            let mut prev = inner.slo.retry.base;
            let mut attempt: u32 = 0;
            let waited = loop {
                let wopts = WriteOptions {
                    tick: opts.tick,
                    attempt,
                };
                // The batch was encoded once above; every attempt borrows it.
                match inner.table.try_put_rows(&cells, wopts) {
                    Ok(waited) => break waited,
                    Err(fault) => {
                        deadline.charge(fault.waited);
                        if fault.kind == WriteFaultKind::Io {
                            return Err(ServeError::Ingest {
                                message: fault.to_string(),
                            });
                        }
                        if attempt >= inner.slo.retry.max_retries || deadline.exceeded() {
                            inner.resilience.record_write_retries_exhausted();
                            return Err(ServeError::IngestRetriesExhausted {
                                attempts: attempt + 1,
                                message: fault.to_string(),
                            });
                        }
                        let pause = inner.slo.retry.backoff(prev, &mut rng);
                        prev = pause;
                        // Never pause past the budget (same cap as the read
                        // path): an uncapped backoff could charge the
                        // deadline far beyond its budget before the next
                        // attempt even runs.
                        let pause = match deadline.remaining() {
                            Some(left) => pause.min(left),
                            None => pause,
                        };
                        deadline.charge(pause);
                        std::thread::sleep(pause);
                        inner.resilience.record_write_retry();
                        report.write_retries += 1;
                        attempt += 1;
                    }
                }
            };
            report.simulated_wait = deadline.charged() + waited;
            if let Some(cache) = &inner.cache {
                for &user in &users {
                    report.invalidated_rows += cache.invalidate_user(user);
                }
            }
        }
        let tick = inner.table.tick().map_err(store_err)?;
        report.compactions = tick.compactions;
        report.region_splits = tick.region_splits;
        report.region_merges = tick.region_merges;
        // A layout change physically rewrites the affected regions' stores.
        // Migration preserves contents byte-for-byte, but cached decoded
        // rows must not outlive the stores they were decoded from: drop the
        // whole cache so every post-split read re-observes the new layout.
        if tick.region_splits + tick.region_merges > 0 {
            if let Some(cache) = &inner.cache {
                report.invalidated_rows += cache.len();
                cache.clear();
            }
        }
        Ok(report)
    }

    /// Version of the currently served model.
    pub fn model_version(&self) -> u64 {
        self.inner.model.read().version
    }

    /// The serving-path latency histogram (per-stage: fetch, assemble,
    /// predict, total).
    pub fn latency(&self) -> &LatencyRecorder {
        &self.inner.latency
    }

    /// Requests served in degraded (context-only) mode so far.
    pub fn degraded_count(&self) -> u64 {
        self.inner.degraded.load(Ordering::Relaxed)
    }

    /// Resilience counters accumulated so far (retries, hedges, failovers,
    /// deadline misses, sheds).
    pub fn resilience(&self) -> ResilienceSnapshot {
        self.inner.resilience.snapshot()
    }

    /// The serving SLO configuration.
    pub fn slo(&self) -> &SloConfig {
        &self.inner.slo
    }

    /// Fetch one party's features through the SLO loop: bounded retry on
    /// transient faults (decorrelated-jitter backoff from the request's
    /// seeded RNG), failover to the next replica on an unavailable one,
    /// one hedged read when the primary exceeds the hedge threshold, and a
    /// simulated-time deadline budget over it all.
    ///
    /// Exhausting retries/replicas degrades to `None` (context-only
    /// scoring, counted); only an exhausted deadline budget fails the
    /// request, as [`ServeError::DeadlineExceeded`]. Torn rows/cells
    /// degrade as before. Every decision is a pure function of the fault
    /// plan and the request's seed — never of wall-clock time.
    fn fetch_party(
        &self,
        tx_id: u64,
        user: u64,
        deadline: &mut Deadline,
        rng: &mut ReqRng,
        degraded: &mut bool,
    ) -> Result<Option<Arc<UserFeatures>>, ServeError> {
        let inner = &self.inner;
        if let Some(cache) = &inner.cache {
            if let Some(cached) = cache.get(user, u64::MAX) {
                return Ok(cached);
            }
        }
        let slo = &inner.slo;
        let n_replicas = inner.table.replica_count();
        let deadline_err = |d: &Deadline| ServeError::DeadlineExceeded {
            tx_id,
            budget: d.budget().unwrap_or_default(),
            charged: d.charged(),
        };
        let mut replica = 0usize;
        let mut attempt = 0u32;
        let mut retries_left = slo.retry.max_retries;
        let mut failovers_left = n_replicas.saturating_sub(1);
        let mut hedges_left = usize::from(slo.hedge.is_some() && n_replicas > 1);
        let mut prev_backoff = slo.retry.base;
        loop {
            if deadline.exceeded() {
                return Err(deadline_err(deadline));
            }
            // Cap the read at the remaining budget and, while a hedge is
            // still available, at the hedge threshold.
            let mut cap = deadline.remaining();
            if hedges_left > 0 {
                if let Some(h) = &slo.hedge {
                    cap = Some(cap.map_or(h.after, |c| c.min(h.after)));
                }
            }
            let opts = ReadOptions {
                replica,
                tick: tx_id,
                attempt,
                max_wait: cap,
            };
            match inner
                .codec
                .get_user_opts(&inner.table, user, u64::MAX, opts)
            {
                Ok((found, waited)) => {
                    deadline.charge(waited);
                    // Only this path caches: the read completed and decoded
                    // cleanly. Torn, faulted, and degraded outcomes below
                    // must be re-observed on every request, never cached.
                    // The decode moves into an `Arc` once; the cache keeps a
                    // pointer clone, so later hits never deep-copy it.
                    let found = found.map(Arc::new);
                    if let Some(cache) = &inner.cache {
                        cache.insert(user, u64::MAX, found.clone());
                    }
                    return Ok(found);
                }
                Err(ServeError::Fetch { fault, .. }) => {
                    deadline.charge(fault.waited);
                    if deadline.exceeded() {
                        return Err(deadline_err(deadline));
                    }
                    match fault.kind {
                        FaultKind::Transient if retries_left > 0 => {
                            retries_left -= 1;
                            attempt += 1;
                            let pause = slo.retry.backoff(prev_backoff, rng);
                            prev_backoff = pause;
                            // Never pause past the budget.
                            let pause = match deadline.remaining() {
                                Some(left) => pause.min(left),
                                None => pause,
                            };
                            deadline.charge(pause);
                            std::thread::sleep(pause);
                            inner.resilience.record_retry();
                        }
                        FaultKind::Unavailable if failovers_left > 0 => {
                            failovers_left -= 1;
                            attempt += 1;
                            replica = (replica + 1) % n_replicas;
                            inner.resilience.record_failover();
                        }
                        FaultKind::TimedOut if hedges_left > 0 => {
                            hedges_left -= 1;
                            attempt += 1;
                            replica = (replica + 1) % n_replicas;
                            inner.resilience.record_hedge();
                        }
                        // A replica index the region does not have: a
                        // routing bug surfaced as a typed fault, not a
                        // storage fault. Nothing ran, so no retry, hedge,
                        // or failover is recorded — pre-fix the table
                        // silently wrapped onto the primary here and the
                        // SLO layer believed its hedge had landed on
                        // different hardware.
                        FaultKind::NoSuchReplica => {
                            *degraded = true;
                            return Ok(None);
                        }
                        // Out of options for this fault kind: degrade to
                        // context-only scoring.
                        _ => {
                            *degraded = true;
                            return Ok(None);
                        }
                    }
                }
                Err(torn) if torn.is_degradable() => {
                    *degraded = true;
                    return Ok(None);
                }
                Err(fatal) => return Err(fatal),
            }
        }
    }

    /// Score one transaction synchronously: HBase fetch for both parties,
    /// vector assembly, model evaluation. Per-stage latencies land in
    /// [`Self::latency`].
    ///
    /// A request whose context width does not match the layout is rejected;
    /// feature-store trouble (absent users, torn rows) never fails the
    /// request — the affected party's slots serve zeros (the cold-start
    /// input the models trained on) and the response is marked degraded.
    pub fn score(&self, req: &ScoreRequest) -> Result<ScoreResponse, ServeError> {
        let layout = &self.inner.layout;
        if req.context.len() != layout.context_slots.len() {
            return Err(ServeError::ContextWidth {
                tx_id: req.tx_id,
                expected: layout.context_slots.len(),
                got: req.context.len(),
            });
        }
        let start = Instant::now();
        let model = Arc::clone(&self.inner.model.read());

        // The deadline budget is virtual (charged in simulated time) and
        // the jitter RNG is seeded per request, so SLO outcomes replay
        // bit-identically under the same fault plan.
        let mut deadline = Deadline::new(self.inner.slo.deadline);
        let mut rng = ReqRng::new(self.inner.slo.seed ^ req.tx_id);
        let mut degraded = false;
        let parties = self
            .fetch_party(
                req.tx_id,
                req.transferor,
                &mut deadline,
                &mut rng,
                &mut degraded,
            )
            .and_then(|payer| {
                let recv = self.fetch_party(
                    req.tx_id,
                    req.transferee,
                    &mut deadline,
                    &mut rng,
                    &mut degraded,
                )?;
                Ok((payer, recv))
            });
        let (payer, recv) = match parties {
            Ok(p) => p,
            Err(e) => {
                if matches!(e, ServeError::DeadlineExceeded { .. }) {
                    self.inner.resilience.record_deadline_exceeded();
                }
                return Err(e);
            }
        };
        let fetched = Instant::now();

        let features = assemble_features(layout, payer.as_deref(), recv.as_deref(), &req.context);
        let assembled = Instant::now();

        let probability = model.model.predict_proba(&features);
        let done = Instant::now();

        if degraded {
            self.inner.degraded.fetch_add(1, Ordering::Relaxed);
        }
        let latency = &self.inner.latency;
        latency.record_stage(Stage::Fetch, fetched - start);
        latency.record_stage(Stage::Assemble, assembled - fetched);
        latency.record_stage(Stage::Predict, done - assembled);
        latency.record_stage(Stage::Total, done - start);

        Ok(ScoreResponse {
            tx_id: req.tx_id,
            probability,
            alert: probability >= model.alert_threshold,
            degraded,
        })
    }

    /// Score a batch of transactions in one pass: unique users are fetched
    /// with a single store lookup per region (one lock acquisition instead
    /// of one per request) and every assembled row goes through the model's
    /// batched predictor. Results mirror the input order, and each response
    /// is bit-identical to what [`Self::score`] would have produced for the
    /// same request against the same snapshot.
    ///
    /// The batch path reads through the clean (non-fault-injected) store
    /// path; torn rows still degrade the affected requests to context-only
    /// scoring exactly like the single-request path. When a row cache is
    /// configured it is consulted first and filled from clean decodes only.
    pub fn score_batch(&self, reqs: &[ScoreRequest]) -> Vec<Result<ScoreResponse, ServeError>> {
        let inner = &self.inner;
        let layout = &inner.layout;
        let start = Instant::now();
        let model = Arc::clone(&inner.model.read());

        // Reject malformed requests up front; only valid ones fetch.
        let mut results: Vec<Option<Result<ScoreResponse, ServeError>>> = reqs
            .iter()
            .map(|req| {
                if req.context.len() != layout.context_slots.len() {
                    Some(Err(ServeError::ContextWidth {
                        tx_id: req.tx_id,
                        expected: layout.context_slots.len(),
                        got: req.context.len(),
                    }))
                } else {
                    None
                }
            })
            .collect();

        // Unique users across the batch, in deterministic order.
        let mut wanted: BTreeMap<u64, ()> = BTreeMap::new();
        for (i, req) in reqs.iter().enumerate() {
            if results[i].is_none() {
                wanted.insert(req.transferor, ());
                wanted.insert(req.transferee, ());
            }
        }
        let users: Vec<u64> = wanted.into_keys().collect();

        // Resolve each user: cache hit, clean fetch, or degraded decode.
        // Payloads are shared `Arc`s — a cache hit costs a refcount bump,
        // not a deep copy of the embedding/velocity vectors.
        let mut fetched: BTreeMap<u64, (Option<Arc<UserFeatures>>, bool)> = BTreeMap::new();
        let mut fatal: BTreeMap<u64, ServeError> = BTreeMap::new();
        let cached = inner.cache.as_ref().map(|c| c.get_batch(&users, u64::MAX));
        let mut misses: Vec<u64> = Vec::new();
        for (idx, &user) in users.iter().enumerate() {
            match cached.as_ref().and_then(|slots| slots[idx].clone()) {
                Some(found) => {
                    fetched.insert(user, (found, false));
                }
                None => misses.push(user),
            }
        }
        if !misses.is_empty() {
            let looked_up = inner.codec.get_users(&inner.table, &misses, u64::MAX);
            let mut clean: Vec<(u64, u64, Option<Arc<UserFeatures>>)> = Vec::new();
            for (&user, res) in misses.iter().zip(looked_up) {
                match res {
                    Ok(found) => {
                        let found = found.map(Arc::new);
                        clean.push((user, u64::MAX, found.clone()));
                        fetched.insert(user, (found, false));
                    }
                    Err(e) if e.is_degradable() => {
                        // Context-only fallback; never cached, so the torn
                        // row is re-observed (and re-counted) every time.
                        fetched.insert(user, (None, true));
                    }
                    Err(e) => {
                        fatal.insert(user, e);
                    }
                }
            }
            if let Some(cache) = &inner.cache {
                cache.insert_batch(clean);
            }
        }
        let fetched_at = Instant::now();

        // Assemble every scoreable request into one dataset.
        let mut dataset = Dataset::new(layout.width());
        let mut scored: Vec<(usize, bool)> = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            if results[i].is_some() {
                continue;
            }
            if let Some(e) = fatal
                .get(&req.transferor)
                .or_else(|| fatal.get(&req.transferee))
            {
                results[i] = Some(Err(e.clone()));
                continue;
            }
            let absent = (None, false);
            let (payer, payer_degraded) = fetched.get(&req.transferor).unwrap_or(&absent);
            let (recv, recv_degraded) = fetched.get(&req.transferee).unwrap_or(&absent);
            let degraded = *payer_degraded || *recv_degraded;
            let features =
                assemble_features(layout, payer.as_deref(), recv.as_deref(), &req.context);
            dataset.push_row(&features, 0.0);
            scored.push((i, degraded));
        }
        let assembled_at = Instant::now();

        let probabilities = model.model.predict_batch(&dataset);
        let done = Instant::now();

        for (&(i, degraded), &probability) in scored.iter().zip(&probabilities) {
            if degraded {
                inner.degraded.fetch_add(1, Ordering::Relaxed);
            }
            results[i] = Some(Ok(ScoreResponse {
                tx_id: reqs[i].tx_id,
                probability,
                alert: probability >= model.alert_threshold,
                degraded,
            }));
        }

        // One latency sample per batch call: the stages measure the batch,
        // not a synthetic per-request split.
        if !reqs.is_empty() {
            let latency = &inner.latency;
            latency.record_stage(Stage::Fetch, fetched_at - start);
            latency.record_stage(Stage::Assemble, assembled_at - fetched_at);
            latency.record_stage(Stage::Predict, done - assembled_at);
            latency.record_stage(Stage::Total, done - start);
        }

        results
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or(Err(ServeError::WorkerPanic {
                    tx_id: reqs[i].tx_id,
                    message: "batch slot left unscored".to_string(),
                }))
            })
            .collect()
    }

    /// Spawn `n_threads` serving workers draining a bounded request queue —
    /// "MS are distributed to satisfy low latency and high service load".
    /// Scored responses go to `on_response`; rejected requests (and any
    /// panic a worker caught) go to `on_error`. Workers never die on a
    /// poisoned request; dropping or [`ServePool::shutdown`]-ing the pool
    /// drains the queue and joins them.
    pub fn serve_pool(
        &self,
        n_threads: usize,
        on_response: impl Fn(ScoreResponse) + Send + Sync + 'static,
        on_error: impl Fn(ServeError) + Send + Sync + 'static,
    ) -> ServePool {
        self.serve_pool_sized(n_threads, 4096, on_response, on_error)
    }

    /// [`Self::serve_pool`] with an explicit queue capacity. A small queue
    /// plus [`ServePool::submit`] gives load shedding: requests that find
    /// the queue full are rejected immediately as [`ServeError::Shed`]
    /// instead of queueing past their deadline.
    pub fn serve_pool_sized(
        &self,
        n_threads: usize,
        queue_cap: usize,
        on_response: impl Fn(ScoreResponse) + Send + Sync + 'static,
        on_error: impl Fn(ServeError) + Send + Sync + 'static,
    ) -> ServePool {
        let (tx, rx) = bounded::<ScoreRequest>(queue_cap.max(1));
        let on_response = Arc::new(on_response);
        let on_error: Arc<dyn Fn(ServeError) + Send + Sync> = Arc::new(on_error);
        let live = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::with_capacity(n_threads.max(1));
        for _ in 0..n_threads.max(1) {
            let server = self.clone();
            let rx = rx.clone();
            let on_response = Arc::clone(&on_response);
            let on_error = Arc::clone(&on_error);
            let live = Arc::clone(&live);
            live.fetch_add(1, Ordering::SeqCst);
            workers.push(std::thread::spawn(move || {
                while let Ok(req) = rx.recv() {
                    let tx_id = req.tx_id;
                    // `score` is panic-free by design; the catch is the
                    // last line of defence so a future regression degrades
                    // to an error report instead of a dead worker.
                    match std::panic::catch_unwind(AssertUnwindSafe(|| server.score(&req))) {
                        Ok(Ok(resp)) => on_response(resp),
                        Ok(Err(e)) => on_error(e),
                        Err(payload) => on_error(ServeError::WorkerPanic {
                            tx_id,
                            message: panic_message(&payload),
                        }),
                    }
                }
                live.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        ServePool {
            tx: Some(tx),
            workers,
            live,
            server: self.clone(),
            on_error,
        }
    }
}

/// Lay both parties' features and the request context into one model input
/// row. Absent parties (brand-new accounts or degraded fetches) leave their
/// slots at zero — the trained models saw the same cold starts. Shared by
/// [`ModelServer::score`] and [`ModelServer::score_batch`] so the two paths
/// cannot drift.
fn assemble_features(
    layout: &FeatureLayout,
    payer: Option<&UserFeatures>,
    recv: Option<&UserFeatures>,
    context: &[f32],
) -> Vec<f32> {
    let mut features = vec![0f32; layout.width()];
    if let Some(p) = payer {
        for (slot, v) in layout.payer_slots.iter().zip(&p.payer_side) {
            if let Some(f) = features.get_mut(*slot) {
                *f = *v;
            }
        }
        for (f, v) in features[layout.n_basic..].iter_mut().zip(&p.embedding) {
            *f = *v;
        }
    }
    if let Some(r) = recv {
        for (slot, v) in layout.receiver_slots.iter().zip(&r.receiver_side) {
            if let Some(f) = features.get_mut(*slot) {
                *f = *v;
            }
        }
        let base = layout.n_basic + layout.embedding_dim;
        for (f, v) in features[base..].iter_mut().zip(&r.embedding) {
            *f = *v;
        }
    }
    // Per-party velocity blocks follow the embedding blocks; a party the
    // streaming tier has not touched keeps its zeros, same as a missing
    // embedding.
    let vbase = layout.n_basic + 2 * layout.embedding_dim;
    if let Some(p) = payer {
        for (f, v) in features[vbase..].iter_mut().zip(&p.velocity) {
            *f = *v;
        }
    }
    if let Some(r) = recv {
        let base = vbase + layout.velocity_width;
        for (f, v) in features[base..].iter_mut().zip(&r.velocity) {
            *f = *v;
        }
    }
    for (slot, v) in layout.context_slots.iter().zip(context) {
        if let Some(f) = features.get_mut(*slot) {
            *f = *v;
        }
    }
    features
}

/// Best-effort string form of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// Handle to a running serving pool: send requests, then shut down cleanly.
/// Dropping the handle also drains and joins the workers.
pub struct ServePool {
    tx: Option<Sender<ScoreRequest>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    live: Arc<AtomicUsize>,
    server: ModelServer,
    on_error: Arc<dyn Fn(ServeError) + Send + Sync>,
}

impl ServePool {
    /// Enqueue a request (blocks when the queue is full). Fails only after
    /// shutdown has begun.
    pub fn send(&self, req: ScoreRequest) -> Result<(), SendError<ScoreRequest>> {
        match &self.tx {
            Some(tx) => tx.send(req),
            None => Err(SendError(req)),
        }
    }

    /// Non-blocking enqueue with load shedding: a request that finds the
    /// queue full (or the pool shut down) is rejected immediately — counted
    /// as shed and reported through the error callback as
    /// [`ServeError::Shed`] — instead of queueing past its deadline.
    /// Returns `true` when the request was accepted.
    pub fn submit(&self, req: ScoreRequest) -> bool {
        let shed = |req: ScoreRequest, queue_depth: usize| {
            self.server.inner.resilience.record_shed();
            (self.on_error)(ServeError::Shed {
                tx_id: req.tx_id,
                queue_depth,
            });
            false
        };
        let Some(tx) = &self.tx else {
            return shed(req, 0);
        };
        match tx.try_send(req) {
            Ok(()) => true,
            Err(TrySendError::Full(req)) => {
                let depth = tx.len();
                shed(req, depth)
            }
            Err(TrySendError::Disconnected(req)) => shed(req, 0),
        }
    }

    /// A cloneable sender for feeding the pool from other threads.
    pub fn sender(&self) -> Option<Sender<ScoreRequest>> {
        self.tx.clone()
    }

    /// Workers currently alive. Equals the spawn count unless a worker
    /// died — which the pool is designed to make impossible.
    pub fn live_workers(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// Stop accepting requests, drain the queue, and join every worker.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.tx = None; // closes the channel once external senders drop
        for w in self.workers.drain(..) {
            // A worker that panicked outside the catch (impossible by
            // design) still must not poison shutdown.
            let _ = w.join();
        }
    }
}

impl Drop for ServePool {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_file::ServableModel;
    use crate::slo::{HedgePolicy, RetryPolicy};
    use proptest::prelude::*;
    use std::sync::OnceLock;
    use std::time::Duration;
    use titant_alihbase::{
        FaultAction, FaultHook, FaultPlan, FaultPlanConfig, ReadCtx, StoreConfig, SyncPolicy,
        UnavailableWindow, WriteCtx, WriteFaultAction,
    };
    use titant_models::{Dataset, GbdtConfig};

    /// Layout: 2 payer + 2 receiver + 1 context = 5 basic, embeddings 2/side.
    fn layout() -> FeatureLayout {
        FeatureLayout {
            n_basic: 5,
            payer_slots: vec![0, 1],
            receiver_slots: vec![2, 3],
            context_slots: vec![4],
            embedding_dim: 2,
            velocity_width: 0,
        }
    }

    /// Model: fraud iff context feature (slot 4) > 0.5 — trivially
    /// learnable, exercises the full assembly path.
    fn model() -> ModelFile {
        let mut d = Dataset::new(9);
        let mut state = 3u64;
        let mut rand01 = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f32 / (1u64 << 31) as f32
        };
        for _ in 0..400 {
            let mut row = [0f32; 9];
            for v in row.iter_mut() {
                *v = rand01();
            }
            let label = (row[4] > 0.5) as u8 as f32;
            d.push_row(&row, label);
        }
        let gbdt = GbdtConfig {
            n_trees: 30,
            subsample: 1.0,
            colsample: 1.0,
            ..Default::default()
        }
        .fit(&d);
        ModelFile {
            version: 20170410,
            alert_threshold: 0.5,
            n_features: 9,
            model: ServableModel::Gbdt(gbdt),
        }
    }

    fn setup_with_table() -> (ModelServer, Arc<RegionedTable>) {
        let table = Arc::new(RegionedTable::single(StoreConfig::default()).unwrap());
        let ms = ModelServer::new(table.clone(), layout(), model()).unwrap();
        let codec = FeatureCodec {
            embedding_dim: 2,
            payer_width: 2,
            receiver_width: 2,
            velocity_width: 0,
        };
        for user in [1u64, 2] {
            codec
                .put_user(
                    &table,
                    user,
                    &UserFeatures {
                        payer_side: vec![0.1, 0.2],
                        receiver_side: vec![0.3, 0.4],
                        embedding: vec![0.5, 0.6],
                        velocity: Vec::new(),
                    },
                    20170410,
                )
                .unwrap();
        }
        (ms, table)
    }

    fn setup() -> ModelServer {
        setup_with_table().0
    }

    fn req(tx_id: u64, context: f32) -> ScoreRequest {
        ScoreRequest {
            tx_id,
            transferor: 1,
            transferee: 2,
            context: vec![context],
        }
    }

    /// Write a torn (3-byte) basic cell for a user, poisoning its row.
    fn tear_user(table: &RegionedTable, user: u64) {
        table
            .put(
                titant_alihbase::CellKey {
                    row: FeatureCodec::row_key(user),
                    family: titant_alihbase::ColumnFamily("basic".into()),
                    qualifier: titant_alihbase::Qualifier("p0".into()),
                },
                99999999,
                bytes::Bytes::from_static(b"bad"),
            )
            .unwrap();
    }

    #[test]
    fn assemble_features_places_velocity_after_the_embeddings() {
        let lay = FeatureLayout {
            velocity_width: 3,
            ..layout()
        };
        let payer = UserFeatures {
            payer_side: vec![0.1, 0.2],
            receiver_side: vec![-1.0, -1.0],
            embedding: vec![0.5, 0.6],
            velocity: vec![7.0, 8.0, 9.0],
        };
        let recv = UserFeatures {
            payer_side: vec![-1.0, -1.0],
            receiver_side: vec![0.3, 0.4],
            embedding: vec![0.7, 0.8],
            velocity: vec![1.0, 2.0, 3.0],
        };
        let f = assemble_features(&lay, Some(&payer), Some(&recv), &[0.9]);
        assert_eq!(f.len(), 5 + 4 + 6);
        assert_eq!(&f[..5], &[0.1, 0.2, 0.3, 0.4, 0.9][..]);
        assert_eq!(&f[5..9], &[0.5, 0.6, 0.7, 0.8][..], "embedding blocks");
        assert_eq!(&f[9..12], &[7.0, 8.0, 9.0][..], "payer velocity");
        assert_eq!(&f[12..], &[1.0, 2.0, 3.0][..], "receiver velocity");
        // An absent party leaves its velocity block at zero, like a missing
        // embedding — and an all-velocity-free request matches the plain
        // layout's assembly on the shared prefix.
        let g = assemble_features(&lay, Some(&payer), None, &[0.9]);
        assert_eq!(&g[12..], &[0.0; 3][..]);
        let plain = assemble_features(&layout(), Some(&payer), Some(&recv), &[0.9]);
        assert_eq!(&f[..9], &plain[..]);
    }

    /// Velocity deltas stream through `ingest_update` exactly like basic
    /// and embedding deltas: validated against the layout width, written as
    /// `velocity`-family cells, and served merged over the last upload.
    #[test]
    fn ingest_update_streams_velocity_deltas_end_to_end() {
        let lay = FeatureLayout {
            velocity_width: 2,
            ..layout()
        };
        let table = Arc::new(RegionedTable::single(StoreConfig::default()).unwrap());
        let mut m = model();
        m.n_features = lay.width();
        let ms = ModelServer::new(table.clone(), lay, m).unwrap();
        let codec = FeatureCodec {
            embedding_dim: 2,
            payer_width: 2,
            receiver_width: 2,
            velocity_width: 2,
        };
        codec
            .put_user(
                &table,
                1,
                &UserFeatures {
                    payer_side: vec![0.1, 0.2],
                    receiver_side: vec![0.3, 0.4],
                    embedding: vec![0.5, 0.6],
                    velocity: Vec::new(),
                },
                20170410,
            )
            .unwrap();
        let report = ms
            .ingest_update(
                &[FeatureDelta {
                    user: 1,
                    velocity: vec![(0, 3.0), (1, 250.0)],
                    ..FeatureDelta::default()
                }],
                20170411,
            )
            .unwrap();
        assert_eq!((report.users, report.cells), (1, 2));
        let got = codec.get_user(&table, 1, u64::MAX).unwrap().unwrap();
        assert_eq!(got.velocity, vec![3.0, 250.0]);
        assert_eq!(got.payer_side, vec![0.1, 0.2], "upload untouched");
        // Out-of-layout velocity indices are rejected before any write.
        let err = ms
            .ingest_update(
                &[FeatureDelta {
                    user: 1,
                    velocity: vec![(2, 1.0)],
                    ..FeatureDelta::default()
                }],
                20170412,
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::DeltaSlot {
                    user: 1,
                    block: "velocity",
                    index: 2,
                    width: 2
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn scores_and_alerts_on_suspicious_context() {
        let ms = setup();
        let safe = ms.score(&req(1, 0.1)).unwrap();
        let fraud = ms.score(&req(2, 0.9)).unwrap();
        assert!(!safe.alert, "safe tx got p={}", safe.probability);
        assert!(fraud.alert, "fraud tx got p={}", fraud.probability);
        assert!(fraud.probability > safe.probability);
        assert!(!safe.degraded && !fraud.degraded);
        assert_eq!(ms.latency().count(), 2);
        assert_eq!(ms.degraded_count(), 0);
    }

    #[test]
    fn per_stage_latencies_are_recorded() {
        let ms = setup();
        for i in 0..10 {
            ms.score(&req(i, 0.2)).unwrap();
        }
        for stage in Stage::ALL {
            assert_eq!(ms.latency().stage_count(stage), 10, "{stage:?}");
            assert!(ms.latency().stage_quantile(stage, 0.99).is_some());
        }
        // Stage sum cannot exceed the total (each is a sub-interval).
        let total = ms.latency().stage_mean(Stage::Total).unwrap();
        let parts = ms.latency().stage_mean(Stage::Fetch).unwrap()
            + ms.latency().stage_mean(Stage::Assemble).unwrap()
            + ms.latency().stage_mean(Stage::Predict).unwrap();
        assert!(parts <= total + std::time::Duration::from_micros(50));
    }

    #[test]
    fn unknown_users_serve_zero_features() {
        let ms = setup();
        let resp = ms
            .score(&ScoreRequest {
                tx_id: 9,
                transferor: 777,
                transferee: 888,
                context: vec![0.9],
            })
            .unwrap();
        // Context still drives the decision; unknown users are the normal
        // cold-start case, not a degradation.
        assert!(resp.alert);
        assert!(!resp.degraded);
        assert_eq!(ms.degraded_count(), 0);
    }

    #[test]
    fn torn_user_row_degrades_to_context_only_scoring() {
        let (ms, table) = setup_with_table();
        tear_user(&table, 1);
        let resp = ms.score(&req(5, 0.9)).unwrap();
        assert!(resp.alert, "context must still drive the verdict");
        assert!(resp.degraded);
        assert_eq!(ms.degraded_count(), 1);
        // The intact receiver row does not mask the payer's torn row.
        let resp = ms.score(&req(6, 0.1)).unwrap();
        assert!(!resp.alert);
        assert!(resp.degraded);
        assert_eq!(ms.degraded_count(), 2);
    }

    #[test]
    fn wrong_context_width_is_rejected_not_panicking() {
        let ms = setup();
        let err = ms
            .score(&ScoreRequest {
                tx_id: 41,
                transferor: 1,
                transferee: 2,
                context: vec![0.9, 0.1, 0.4],
            })
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::ContextWidth {
                tx_id: 41,
                expected: 1,
                got: 3
            }
        );
        // Rejected requests record no latency sample.
        assert_eq!(ms.latency().count(), 0);
    }

    #[test]
    fn hot_swap_changes_version_not_availability() {
        let ms = setup();
        assert_eq!(ms.model_version(), 20170410);
        let mut m2 = model();
        m2.version = 20170411;
        ms.deploy(m2).unwrap();
        assert_eq!(ms.model_version(), 20170411);
        // Still serving.
        assert!(ms.score(&req(3, 0.9)).unwrap().alert);
    }

    #[test]
    fn mismatched_model_rejected_at_construction() {
        let table = Arc::new(RegionedTable::single(StoreConfig::default()).unwrap());
        let mut m = model();
        m.n_features = 3;
        let err = ModelServer::new(table, layout(), m).unwrap_err();
        assert_eq!(
            err,
            ServeError::ModelWidth {
                expected: 9,
                got: 3
            }
        );
    }

    #[test]
    fn bad_layout_rejected_at_construction() {
        let table = Arc::new(RegionedTable::single(StoreConfig::default()).unwrap());
        let mut l = layout();
        l.context_slots = vec![7]; // out of the 5-wide basic block
        assert!(matches!(
            ModelServer::new(table, l, model()).unwrap_err(),
            ServeError::LayoutSlots { .. }
        ));
    }

    #[test]
    fn mismatched_deploy_keeps_the_live_model_serving() {
        let ms = setup();
        let mut bad = model();
        bad.n_features = 4;
        bad.version = 99999999;
        let err = ms.deploy(bad).unwrap_err();
        assert!(matches!(err, ServeError::ModelWidth { got: 4, .. }));
        // The live model is untouched and still serving.
        assert_eq!(ms.model_version(), 20170410);
        assert!(ms.score(&req(8, 0.9)).unwrap().alert);
    }

    #[test]
    fn pool_processes_concurrent_load() {
        let ms = setup();
        let hits = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let hits2 = Arc::clone(&hits);
        let pool = ms.serve_pool(4, move |resp| hits2.lock().push(resp.tx_id), |_| {});
        for i in 0..100 {
            pool.send(req(i, if i % 2 == 0 { 0.9 } else { 0.1 }))
                .unwrap();
        }
        pool.shutdown(); // drains the queue and joins the workers
        assert_eq!(hits.lock().len(), 100);
    }

    /// One trained model for every SLO test (training is the slow part).
    fn cached_model() -> ModelFile {
        static MODEL: OnceLock<ModelFile> = OnceLock::new();
        MODEL.get_or_init(model).clone()
    }

    /// A fault hook scripted by a closure over the read coordinates.
    struct Scripted<F>(F);
    impl<F: Fn(&ReadCtx<'_>) -> FaultAction + Send + Sync> FaultHook for Scripted<F> {
        fn on_read(&self, ctx: &ReadCtx<'_>) -> FaultAction {
            (self.0)(ctx)
        }
    }

    /// A server over a `replicas`-way replicated single-region table with
    /// users 1 and 2 uploaded, ready for a fault hook.
    fn setup_slo(replicas: usize, slo: SloConfig) -> (ModelServer, Arc<RegionedTable>) {
        let table = Arc::new(
            RegionedTable::single(StoreConfig {
                replicas,
                ..Default::default()
            })
            .unwrap(),
        );
        let ms = ModelServer::with_slo(table.clone(), layout(), cached_model(), slo).unwrap();
        let codec = FeatureCodec {
            embedding_dim: 2,
            payer_width: 2,
            receiver_width: 2,
            velocity_width: 0,
        };
        for user in [1u64, 2] {
            codec
                .put_user(
                    &table,
                    user,
                    &UserFeatures {
                        payer_side: vec![0.1, 0.2],
                        receiver_side: vec![0.3, 0.4],
                        embedding: vec![0.5, 0.6],
                        velocity: Vec::new(),
                    },
                    20170410,
                )
                .unwrap();
        }
        (ms, table)
    }

    #[test]
    fn deadline_exhaustion_is_typed_and_counted() {
        let (ms, table) = setup_slo(
            1,
            SloConfig {
                deadline: Some(Duration::from_millis(1)),
                ..Default::default()
            },
        );
        table.set_fault_hook(Some(Arc::new(Scripted(|_: &ReadCtx<'_>| {
            FaultAction::Latency(Duration::from_millis(2))
        }))));
        let err = ms.score(&req(1, 0.9)).unwrap_err();
        assert_eq!(
            err,
            ServeError::DeadlineExceeded {
                tx_id: 1,
                budget: Duration::from_millis(1),
                charged: Duration::from_millis(1),
            }
        );
        assert_eq!(ms.resilience().deadline_exceeded, 1);
        // Deadline misses record no latency sample and no degradation.
        assert_eq!(ms.latency().count(), 0);
        assert_eq!(ms.degraded_count(), 0);
    }

    #[test]
    fn transient_faults_retry_with_backoff_and_succeed() {
        let (ms, table) = setup_slo(1, SloConfig::default());
        table.set_fault_hook(Some(Arc::new(Scripted(|ctx: &ReadCtx<'_>| {
            if ctx.attempt < 2 {
                FaultAction::Transient
            } else {
                FaultAction::None
            }
        }))));
        let resp = ms.score(&req(1, 0.9)).unwrap();
        assert!(resp.alert && !resp.degraded);
        // Two retries per party, both parties.
        assert_eq!(ms.resilience().retried, 4);
        assert_eq!(ms.degraded_count(), 0);
    }

    #[test]
    fn exhausted_retries_degrade_to_context_only() {
        let (ms, table) = setup_slo(1, SloConfig::default());
        table.set_fault_hook(Some(Arc::new(Scripted(|_: &ReadCtx<'_>| {
            FaultAction::Transient
        }))));
        let resp = ms.score(&req(1, 0.9)).unwrap();
        assert!(resp.alert, "context still drives the verdict");
        assert!(resp.degraded);
        assert_eq!(ms.degraded_count(), 1);
        assert_eq!(ms.resilience().retried, 4, "max_retries per party");
    }

    #[test]
    fn unavailable_primary_fails_over_to_a_replica() {
        let (ms, table) = setup_slo(2, SloConfig::default());
        table.set_fault_hook(Some(Arc::new(Scripted(|ctx: &ReadCtx<'_>| {
            if ctx.replica == 0 {
                FaultAction::Unavailable
            } else {
                FaultAction::None
            }
        }))));
        let resp = ms.score(&req(1, 0.9)).unwrap();
        assert!(resp.alert && !resp.degraded);
        assert_eq!(ms.resilience().failovers, 2, "one failover per party");
        assert_eq!(ms.degraded_count(), 0);
    }

    #[test]
    fn slow_primary_hedges_to_a_replica() {
        let (ms, table) = setup_slo(
            2,
            SloConfig {
                hedge: Some(HedgePolicy {
                    after: Duration::from_micros(200),
                }),
                ..Default::default()
            },
        );
        table.set_fault_hook(Some(Arc::new(Scripted(|ctx: &ReadCtx<'_>| {
            if ctx.replica == 0 {
                FaultAction::Latency(Duration::from_millis(5))
            } else {
                FaultAction::None
            }
        }))));
        let resp = ms.score(&req(1, 0.9)).unwrap();
        assert!(resp.alert && !resp.degraded);
        assert_eq!(ms.resilience().hedged, 2, "one hedge per party");
        // The hedge abandoned the slow primary after the threshold instead
        // of waiting out the full 5 ms injected delay, twice.
        let fetch = ms.latency().stage_quantile(Stage::Fetch, 1.0).unwrap();
        assert!(fetch < Duration::from_millis(5), "fetch took {fetch:?}");
    }

    #[test]
    fn hedge_without_replicas_waits_out_the_latency() {
        let (ms, table) = setup_slo(
            1,
            SloConfig {
                hedge: Some(HedgePolicy {
                    after: Duration::from_micros(100),
                }),
                ..Default::default()
            },
        );
        table.set_fault_hook(Some(Arc::new(Scripted(|_: &ReadCtx<'_>| {
            FaultAction::Latency(Duration::from_micros(300))
        }))));
        let resp = ms.score(&req(1, 0.9)).unwrap();
        assert!(!resp.degraded);
        assert_eq!(ms.resilience().hedged, 0, "nowhere to hedge to");
    }

    #[test]
    fn pool_submit_sheds_when_the_queue_is_full() {
        let (ms, table) = setup_slo(1, SloConfig::default());
        // Slow every read down so one worker cannot keep up with a burst.
        table.set_fault_hook(Some(Arc::new(Scripted(|_: &ReadCtx<'_>| {
            FaultAction::Latency(Duration::from_millis(20))
        }))));
        let responses = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let errors = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let (r2, e2) = (Arc::clone(&responses), Arc::clone(&errors));
        let pool = ms.serve_pool_sized(
            1,
            2,
            move |resp| r2.lock().push(resp),
            move |err| e2.lock().push(err),
        );
        let total = 30u64;
        for i in 0..total {
            pool.submit(req(i, 0.1));
        }
        assert_eq!(pool.live_workers(), 1);
        pool.shutdown();

        let responses = responses.lock();
        let errors = errors.lock();
        // Conservation: every burst request resolved as scored or shed.
        assert_eq!(responses.len() + errors.len(), total as usize);
        assert!(!errors.is_empty(), "a 2-deep queue must shed this burst");
        assert!(errors.iter().all(|e| matches!(e, ServeError::Shed { .. })));
        assert_eq!(ms.resilience().shed, errors.len() as u64);
    }

    /// Drive `n` requests through a fresh chaos server and return every
    /// deterministic counter: (ok, deadline-errors, degraded, resilience).
    fn chaos_run(seed: u64, workers: Option<usize>) -> (u64, u64, u64, ResilienceSnapshot) {
        let slo = SloConfig {
            deadline: Some(Duration::from_micros(900)),
            retry: RetryPolicy {
                max_retries: 2,
                base: Duration::from_micros(20),
                cap: Duration::from_micros(80),
            },
            hedge: Some(HedgePolicy {
                after: Duration::from_micros(100),
            }),
            seed,
        };
        let (ms, table) = setup_slo(2, slo);
        table.set_fault_hook(Some(Arc::new(FaultPlan::new(FaultPlanConfig {
            seed,
            transient_rate: 0.15,
            latency_rate: 0.08,
            latency: Duration::from_micros(150),
            torn_cell_rate: 0.03,
            unavailable: Some(UnavailableWindow {
                region: 0,
                replica: Some(0),
                from_tick: 20,
                to_tick: 60,
            }),
            // Write-fault rates stay at their default-off zeros.
            ..FaultPlanConfig::default()
        }))));
        let n = 80u64;
        let ok = Arc::new(AtomicU64::new(0));
        let deadline_errs = Arc::new(AtomicU64::new(0));
        match workers {
            None => {
                for i in 0..n {
                    match ms.score(&req(i, if i % 2 == 0 { 0.9 } else { 0.1 })) {
                        Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                        Err(ServeError::DeadlineExceeded { .. }) => {
                            deadline_errs.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    };
                }
            }
            Some(w) => {
                let (ok2, de2) = (Arc::clone(&ok), Arc::clone(&deadline_errs));
                let pool = ms.serve_pool(
                    w,
                    move |_| {
                        ok2.fetch_add(1, Ordering::Relaxed);
                    },
                    move |e| match e {
                        ServeError::DeadlineExceeded { .. } => {
                            de2.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unexpected error: {other}"),
                    },
                );
                for i in 0..n {
                    // Blocking send: the deterministic phase sheds nothing.
                    pool.send(req(i, if i % 2 == 0 { 0.9 } else { 0.1 }))
                        .unwrap();
                }
                pool.shutdown();
            }
        }
        (
            ok.load(Ordering::Relaxed),
            deadline_errs.load(Ordering::Relaxed),
            ms.degraded_count(),
            ms.resilience(),
        )
    }

    proptest! {
        /// Satellite: the same seed yields the same [`ScoreResponse`]
        /// outcome counters across two runs — and across worker counts,
        /// because every SLO decision is a pure function of the fault plan
        /// and the request's seed, never of scheduler interleaving.
        #[test]
        fn chaos_counters_replay_identically_across_runs_and_workers(seed in 0u64..1 << 32) {
            let sequential = chaos_run(seed, None);
            prop_assert_eq!(sequential, chaos_run(seed, None));
            prop_assert_eq!(sequential, chaos_run(seed, Some(1)));
            prop_assert_eq!(sequential, chaos_run(seed, Some(3)));
            // Conservation: every request resolved one way or the other.
            let (ok, deadline_errs, _, r) = sequential;
            prop_assert_eq!(ok + deadline_errs, 80);
            // Blocking sends never shed.
            prop_assert_eq!(r.shed, 0);
        }
    }

    /// A cache-enabled server over a fresh single-region table with users
    /// 1 and 2 uploaded.
    fn setup_cached() -> (ModelServer, Arc<RegionedTable>) {
        let table = Arc::new(RegionedTable::single(StoreConfig::default()).unwrap());
        let ms = ModelServer::with_options(
            table.clone(),
            layout(),
            cached_model(),
            SloConfig::default(),
            Some(RowCacheConfig::default()),
        )
        .unwrap();
        let codec = FeatureCodec {
            embedding_dim: 2,
            payer_width: 2,
            receiver_width: 2,
            velocity_width: 0,
        };
        for user in [1u64, 2] {
            codec
                .put_user(
                    &table,
                    user,
                    &UserFeatures {
                        payer_side: vec![0.1, 0.2],
                        receiver_side: vec![0.3, 0.4],
                        embedding: vec![0.5, 0.6],
                        velocity: Vec::new(),
                    },
                    20170410,
                )
                .unwrap();
        }
        (ms, table)
    }

    #[test]
    fn cached_scores_are_bit_identical_to_uncached() {
        let ms_plain = setup();
        let (ms_cached, _) = setup_cached();
        for i in 0..20u64 {
            let request = req(i, i as f32 / 20.0);
            let cold = ms_cached.score(&request).unwrap();
            let warm = ms_cached.score(&request).unwrap();
            let plain = ms_plain.score(&request).unwrap();
            assert_eq!(cold.probability.to_bits(), plain.probability.to_bits());
            assert_eq!(warm.probability.to_bits(), plain.probability.to_bits());
            assert_eq!((cold.alert, cold.degraded), (plain.alert, plain.degraded));
        }
        let stats = ms_cached.row_cache_stats().unwrap();
        assert!(stats.hits > 0, "repeat requests must hit the cache");
        // Both parties cached after the first request; all later fetches hit.
        assert_eq!(stats.misses, 2);
        // Cache hits skip the store entirely.
        assert_eq!(stats.hits, 2 * 20 * 2 - 2);
    }

    #[test]
    fn cache_is_never_filled_from_degraded_reads() {
        let (ms, table) = setup_cached();
        tear_user(&table, 1);
        for _ in 0..3 {
            let resp = ms.score(&req(1, 0.9)).unwrap();
            assert!(resp.degraded, "torn row must degrade every time");
        }
        // Every degraded request re-read the torn row: nothing was cached
        // for user 1, so degradations keep being observed and counted.
        assert_eq!(ms.degraded_count(), 3);
        let stats = ms.row_cache_stats().unwrap();
        // User 2 (the intact receiver) is the only cached entry.
        assert_eq!(stats.inserted, 1);
    }

    #[test]
    fn deploy_invalidates_the_row_cache() {
        let (ms, _table) = setup_cached();
        ms.score(&req(1, 0.2)).unwrap();
        assert_eq!(ms.row_cache_stats().unwrap().inserted, 2);
        let mut m2 = cached_model();
        m2.version = 20170411;
        ms.deploy(m2).unwrap();
        let stats = ms.row_cache_stats().unwrap();
        assert_eq!(stats.invalidations, 1);
        // The next request misses (re-fetches) instead of serving pre-deploy
        // decodes.
        let before = stats.misses;
        ms.score(&req(2, 0.2)).unwrap();
        assert_eq!(ms.row_cache_stats().unwrap().misses, before + 2);
    }

    #[test]
    fn explicit_invalidation_drops_cached_rows_after_feature_upload() {
        let (ms, table) = setup_cached();
        ms.score(&req(1, 0.2)).unwrap();
        // Upload fresher features for user 1, then invalidate.
        let codec = FeatureCodec {
            embedding_dim: 2,
            payer_width: 2,
            receiver_width: 2,
            velocity_width: 0,
        };
        codec
            .put_user(
                &table,
                1,
                &UserFeatures {
                    payer_side: vec![0.9, 0.9],
                    receiver_side: vec![0.9, 0.9],
                    embedding: vec![0.9, 0.9],
                    velocity: Vec::new(),
                },
                20170411,
            )
            .unwrap();
        // The upload alone does NOT evict: the cache still serves the
        // pre-upload decode (this is exactly why uploaders must invalidate).
        let before = ms.row_cache_stats().unwrap();
        ms.score(&req(10, 0.2)).unwrap();
        let after = ms.row_cache_stats().unwrap();
        assert_eq!(after.misses, before.misses, "stale entries still serve");
        // Invalidation drops everything; the next request re-fetches and
        // re-caches the freshly uploaded rows.
        ms.invalidate_row_cache();
        assert_eq!(after.inserted, 2);
        ms.score(&req(11, 0.2)).unwrap();
        let fresh = ms.row_cache_stats().unwrap();
        assert_eq!(
            fresh.misses,
            after.misses + 2,
            "invalidation forces a re-read"
        );
        assert_eq!(fresh.inserted, 4);
        assert_eq!(fresh.invalidations, 1);
    }

    #[test]
    fn ingest_update_invalidates_only_the_patched_users_cache_rows() {
        let (ms, table) = setup_cached();
        // Warm the cache with both parties of `req` (users 1 and 2).
        ms.score(&req(0, 0.4)).unwrap();
        assert_eq!(ms.row_cache_stats().unwrap().inserted, 2);
        // Stream a correction for user 1 only.
        let report = ms
            .ingest_update(
                &[FeatureDelta {
                    user: 1,
                    payer: vec![(0, 0.7), (1, 0.8)],
                    ..FeatureDelta::default()
                }],
                20170412,
            )
            .unwrap();
        assert_eq!((report.users, report.cells), (1, 2));
        assert_eq!(report.invalidated_rows, 1, "only user 1's row drops");
        // The store now serves the patched values.
        let codec = FeatureCodec {
            embedding_dim: 2,
            payer_width: 2,
            receiver_width: 2,
            velocity_width: 0,
        };
        let got = codec.get_user(&table, 1, u64::MAX).unwrap().unwrap();
        assert_eq!(got.payer_side, vec![0.7, 0.8]);
        // The next request re-fetches user 1 (a miss) while user 2 is still
        // served from the cache (a hit): surgical invalidation.
        let before = ms.row_cache_stats().unwrap();
        ms.score(&req(1, 0.4)).unwrap();
        let after = ms.row_cache_stats().unwrap();
        assert_eq!(after.misses, before.misses + 1);
        assert_eq!(after.hits, before.hits + 1);
        // And the cached server now scores exactly like an uncached server
        // over the same post-ingest table: no stale decode survives.
        let plain = ModelServer::new(table.clone(), layout(), cached_model()).unwrap();
        let cached_resp = ms.score(&req(2, 0.4)).unwrap();
        let plain_resp = plain.score(&req(2, 0.4)).unwrap();
        assert_eq!(
            cached_resp.probability.to_bits(),
            plain_resp.probability.to_bits()
        );
    }

    #[test]
    fn ingest_update_rejects_out_of_layout_deltas_before_writing() {
        let (ms, table) = setup_cached();
        let before = table.write_stats();
        let err = ms
            .ingest_update(
                &[FeatureDelta {
                    user: 1,
                    payer: vec![(0, 1.0)],
                    receiver: vec![(9, 1.0)],
                    ..FeatureDelta::default()
                }],
                20170412,
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::DeltaSlot {
                    user: 1,
                    block: "receiver",
                    index: 9,
                    width: 2
                }
            ),
            "{err:?}"
        );
        assert!(!err.is_degradable());
        // Nothing was written — not even the valid payer half of the delta.
        let delta = table.write_stats().since(&before);
        assert_eq!((delta.batches, delta.cells_written), (0, 0));
    }

    #[test]
    fn ingest_update_without_a_cache_still_writes_and_ticks() {
        let (ms, table) = setup_with_table();
        let report = ms
            .ingest_update(
                &[
                    FeatureDelta {
                        user: 1,
                        embedding: vec![(0, 0.9)],
                        ..FeatureDelta::default()
                    },
                    FeatureDelta {
                        user: 2,
                        receiver: vec![(1, -1.0)],
                        ..FeatureDelta::default()
                    },
                    // Empty deltas are skipped, not written.
                    FeatureDelta::default(),
                ],
                20170412,
            )
            .unwrap();
        assert_eq!((report.users, report.cells), (2, 2));
        assert_eq!(report.invalidated_rows, 0);
        let codec = FeatureCodec {
            embedding_dim: 2,
            payer_width: 2,
            receiver_width: 2,
            velocity_width: 0,
        };
        let got = codec.get_user(&table, 2, u64::MAX).unwrap().unwrap();
        assert_eq!(got.receiver_side, vec![0.3, -1.0]);
        // An all-empty ingest is a no-op apart from the tick.
        let before = table.write_stats();
        let report = ms.ingest_update(&[], 20170413).unwrap();
        assert_eq!((report.users, report.cells), (0, 0));
        assert_eq!(table.write_stats().since(&before).batches, 0);
    }

    /// A batch of nothing but empty deltas writes no cells, charges no
    /// retry budget, and invalidates nothing — but the maintenance tick
    /// still runs: a pending group-commit WAL window left by an earlier
    /// write is synced by the empty ingest.
    #[test]
    fn ingest_update_of_all_empty_deltas_still_ticks() {
        let dir = std::env::temp_dir().join(format!("titant-ms-emptytick-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = StoreConfig {
            dir: Some(dir.clone()),
            sync: titant_alihbase::SyncPolicy::GroupCommit {
                max_batch: 1024,
                max_wait: Duration::from_millis(5),
            },
            ..StoreConfig::default()
        };
        let table = Arc::new(RegionedTable::single(cfg).unwrap());
        let ms = ModelServer::new(table.clone(), layout(), model()).unwrap();
        // A direct upload (no tick of its own) leaves its WAL frame pending
        // in the group-commit window...
        FeatureCodec {
            embedding_dim: 2,
            payer_width: 2,
            receiver_width: 2,
            velocity_width: 0,
        }
        .put_user(
            &table,
            1,
            &UserFeatures {
                payer_side: vec![0.1, 0.2],
                receiver_side: vec![0.3, 0.4],
                embedding: vec![0.5, 0.6],
                velocity: Vec::new(),
            },
            20170412,
        )
        .unwrap();
        let before = table.write_stats();
        let report = ms
            .ingest_update(
                &[
                    FeatureDelta::default(),
                    FeatureDelta {
                        user: 9,
                        ..FeatureDelta::default()
                    },
                ],
                20170413,
            )
            .unwrap();
        assert_eq!((report.users, report.cells), (0, 0));
        assert_eq!(report.write_retries, 0);
        assert_eq!(report.invalidated_rows, 0);
        assert_eq!(report.simulated_wait, Duration::ZERO);
        let delta = table.write_stats().since(&before);
        assert_eq!((delta.batches, delta.cells_written), (0, 0));
        assert!(
            delta.wal_syncs > 0,
            "the tick must still run and flush the pending WAL window"
        );
        // A second empty ingest finds nothing pending and is a pure no-op.
        let before = table.write_stats();
        ms.ingest_update(&[], 20170414).unwrap();
        assert_eq!(table.write_stats().since(&before).wal_syncs, 0);
        drop(ms);
        drop(table);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A write-fault hook that plays a fixed script of actions in order,
    /// then goes clean. Reads are never touched.
    struct ScriptedWrites(parking_lot::Mutex<Vec<WriteFaultAction>>);

    impl ScriptedWrites {
        fn new(mut script: Vec<WriteFaultAction>) -> Self {
            script.reverse();
            Self(parking_lot::Mutex::new(script))
        }
    }

    impl FaultHook for ScriptedWrites {
        fn on_read(&self, _ctx: &ReadCtx<'_>) -> FaultAction {
            FaultAction::None
        }
        fn on_write(&self, _ctx: &WriteCtx<'_>) -> WriteFaultAction {
            self.0.lock().pop().unwrap_or(WriteFaultAction::None)
        }
    }

    fn setup_with_slo(slo: SloConfig) -> (ModelServer, Arc<RegionedTable>) {
        let table = Arc::new(RegionedTable::single(StoreConfig::default()).unwrap());
        let ms = ModelServer::with_slo(table.clone(), layout(), model(), slo).unwrap();
        let codec = FeatureCodec {
            embedding_dim: 2,
            payer_width: 2,
            receiver_width: 2,
            velocity_width: 0,
        };
        for user in [1u64, 2] {
            codec
                .put_user(
                    &table,
                    user,
                    &UserFeatures {
                        payer_side: vec![0.1, 0.2],
                        receiver_side: vec![0.3, 0.4],
                        embedding: vec![0.5, 0.6],
                        velocity: Vec::new(),
                    },
                    20170410,
                )
                .unwrap();
        }
        (ms, table)
    }

    #[test]
    fn ingest_retries_through_transient_write_faults() {
        let slo = SloConfig {
            retry: RetryPolicy {
                max_retries: 3,
                base: Duration::from_micros(10),
                cap: Duration::from_micros(50),
            },
            ..SloConfig::default()
        };
        let (ms, table) = setup_with_slo(slo);
        table.set_fault_hook(Some(Arc::new(ScriptedWrites::new(vec![
            WriteFaultAction::AppendError,
            WriteFaultAction::SyncError,
        ]))));
        let report = ms
            .ingest_update_opts(
                &[FeatureDelta {
                    user: 1,
                    payer: vec![(0, 0.9)],
                    ..FeatureDelta::default()
                }],
                20170412,
                IngestOptions { tick: 7 },
            )
            .unwrap();
        assert_eq!(report.write_retries, 2, "two faulted attempts, then ack");
        let r = ms.resilience();
        assert_eq!((r.write_retried, r.write_retries_exhausted), (2, 0));
        // The acknowledged attempt's cells are readable.
        let codec = FeatureCodec {
            embedding_dim: 2,
            payer_width: 2,
            receiver_width: 2,
            velocity_width: 0,
        };
        let got = codec.get_user(&table, 1, u64::MAX).unwrap().unwrap();
        assert_eq!(got.payer_side, vec![0.9, 0.2]);
        // And the physical failures were counted.
        let stats = table.write_stats();
        assert_eq!(stats.wal_append_failures, 1);
        assert_eq!(stats.wal_sync_failures, 1);
    }

    #[test]
    fn exhausted_write_retries_surface_a_typed_error() {
        let slo = SloConfig {
            retry: RetryPolicy {
                max_retries: 2,
                base: Duration::from_micros(10),
                cap: Duration::from_micros(50),
            },
            ..SloConfig::default()
        };
        let (ms, table) = setup_with_slo(slo);
        table.set_fault_hook(Some(Arc::new(ScriptedWrites::new(vec![
            WriteFaultAction::AppendError;
            3
        ]))));
        let err = ms
            .ingest_update_opts(
                &[FeatureDelta {
                    user: 1,
                    payer: vec![(0, 0.9)],
                    ..FeatureDelta::default()
                }],
                20170412,
                IngestOptions { tick: 3 },
            )
            .unwrap_err();
        match &err {
            ServeError::IngestRetriesExhausted { attempts, message } => {
                assert_eq!(*attempts, 3, "initial try + max_retries");
                assert!(message.contains("AppendError"), "{message}");
            }
            other => panic!("expected IngestRetriesExhausted, got {other:?}"),
        }
        assert!(!err.is_degradable());
        let r = ms.resilience();
        assert_eq!((r.write_retried, r.write_retries_exhausted), (2, 1));
        // Nothing from the rejected batch is readable: user 1 still serves
        // its seeded values.
        let codec = FeatureCodec {
            embedding_dim: 2,
            payer_width: 2,
            receiver_width: 2,
            velocity_width: 0,
        };
        let got = codec.get_user(&table, 1, u64::MAX).unwrap().unwrap();
        assert_eq!(got.payer_side, vec![0.1, 0.2]);
    }

    /// Regression: the ingest retry loop used to charge (and sleep) the
    /// full backoff pause even when it overshot the deadline budget,
    /// unlike the read path's "never pause past the budget" cap. With a
    /// backoff base larger than the whole budget, a single retry must now
    /// charge at most the remaining budget.
    #[test]
    fn ingest_backoff_never_charges_past_the_deadline() {
        let budget = Duration::from_micros(100);
        let slo = SloConfig {
            deadline: Some(budget),
            retry: RetryPolicy {
                max_retries: 4,
                base: Duration::from_micros(500),
                cap: Duration::from_millis(10),
            },
            ..SloConfig::default()
        };
        let (ms, table) = setup_with_slo(slo);
        // One faulted attempt, then clean: the success report exposes the
        // total simulated charge.
        table.set_fault_hook(Some(Arc::new(ScriptedWrites::new(vec![
            WriteFaultAction::AppendError,
        ]))));
        let report = ms
            .ingest_update_opts(
                &[FeatureDelta {
                    user: 1,
                    payer: vec![(0, 0.9)],
                    ..FeatureDelta::default()
                }],
                20170412,
                IngestOptions { tick: 5 },
            )
            .unwrap();
        assert_eq!(report.write_retries, 1);
        assert!(
            report.simulated_wait <= budget,
            "charged {:?} past the {budget:?} budget",
            report.simulated_wait
        );
    }

    /// Under a write storm (every attempt faulted) the capped backoff
    /// exhausts the deadline exactly at its budget: the loop stops on
    /// `deadline.exceeded()` after one retry instead of burning the whole
    /// retry allowance on pauses charged far beyond the budget.
    #[test]
    fn ingest_storm_stops_at_the_deadline_budget() {
        let slo = SloConfig {
            deadline: Some(Duration::from_micros(100)),
            retry: RetryPolicy {
                max_retries: 10,
                base: Duration::from_micros(500),
                cap: Duration::from_millis(10),
            },
            ..SloConfig::default()
        };
        let (ms, table) = setup_with_slo(slo);
        table.set_fault_hook(Some(Arc::new(ScriptedWrites::new(vec![
            WriteFaultAction::AppendError;
            12
        ]))));
        let err = ms
            .ingest_update_opts(
                &[FeatureDelta {
                    user: 1,
                    payer: vec![(0, 0.9)],
                    ..FeatureDelta::default()
                }],
                20170412,
                IngestOptions { tick: 6 },
            )
            .unwrap_err();
        match &err {
            ServeError::IngestRetriesExhausted { attempts, .. } => {
                // Attempt 0 faults; the retry pause is capped to the whole
                // remaining budget, so attempt 1's fault finds the deadline
                // exceeded and stops — eight retries still unspent.
                assert_eq!(*attempts, 2, "deadline, not retry count, ended it");
            }
            other => panic!("expected IngestRetriesExhausted, got {other:?}"),
        }
        let r = ms.resilience();
        assert_eq!((r.write_retried, r.write_retries_exhausted), (1, 1));
    }

    /// `recover_table` crash-restarts the store in place; acknowledged
    /// ingests survive and post-recovery scores are bit-identical.
    #[test]
    fn recover_table_preserves_acknowledged_scores() {
        let dir = std::env::temp_dir().join(format!("titant-ms-recover-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = StoreConfig {
            dir: Some(dir.clone()),
            sync: SyncPolicy::Always,
            ..Default::default()
        };
        let table = Arc::new(RegionedTable::single(cfg).unwrap());
        let ms = ModelServer::new(table.clone(), layout(), model()).unwrap();
        let codec = FeatureCodec {
            embedding_dim: 2,
            payer_width: 2,
            receiver_width: 2,
            velocity_width: 0,
        };
        for user in [1u64, 2] {
            codec
                .put_user(
                    &table,
                    user,
                    &UserFeatures {
                        payer_side: vec![0.1, 0.2],
                        receiver_side: vec![0.3, 0.4],
                        embedding: vec![0.5, 0.6],
                        velocity: Vec::new(),
                    },
                    20170410,
                )
                .unwrap();
        }
        ms.ingest_update(
            &[FeatureDelta {
                user: 1,
                payer: vec![(0, 0.7)],
                ..FeatureDelta::default()
            }],
            20170412,
        )
        .unwrap();
        let before = ms.score(&req(0, 0.4)).unwrap();
        let report = ms.recover_table().unwrap();
        assert_eq!((report.regions, report.replicas), (1, 1));
        let after = ms.score(&req(1, 0.4)).unwrap();
        assert_eq!(before.probability.to_bits(), after.probability.to_bits());
        assert!(!after.degraded, "recovered rows must read back intact");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn score_batch_matches_score_bit_for_bit() {
        let (ms, table) = setup_with_table();
        tear_user(&table, 3);
        let mut reqs = Vec::new();
        for i in 0..30u64 {
            let mut request = req(i, i as f32 / 30.0);
            match i % 4 {
                1 => request.transferor = 777, // unknown user: cold start
                2 => request.transferor = 3,   // torn row: degraded
                3 if i == 15 => request.context = vec![0.1, 0.2], // malformed
                _ => {}
            }
            reqs.push(request);
        }
        let batch = ms.score_batch(&reqs);
        assert_eq!(batch.len(), reqs.len());
        for (request, got) in reqs.iter().zip(&batch) {
            let single = ms.score(request);
            match (got, &single) {
                (Ok(b), Ok(s)) => {
                    assert_eq!(b.probability.to_bits(), s.probability.to_bits());
                    assert_eq!(
                        (b.tx_id, b.alert, b.degraded),
                        (s.tx_id, s.alert, s.degraded)
                    );
                }
                (Err(b), Err(s)) => assert_eq!(b, s),
                (b, s) => panic!("batch={b:?} single={s:?} diverged"),
            }
        }
        // Degradations were counted on both paths.
        let batch_degraded = batch
            .iter()
            .filter(|r| matches!(r, Ok(resp) if resp.degraded))
            .count();
        assert!(batch_degraded > 0);
    }

    #[test]
    fn score_batch_uses_and_fills_the_row_cache() {
        let (ms, _table) = setup_cached();
        let reqs: Vec<ScoreRequest> = (0..10).map(|i| req(i, 0.4)).collect();
        let first = ms.score_batch(&reqs);
        let stats = ms.row_cache_stats().unwrap();
        // One batched lookup resolved both unique users once.
        assert_eq!((stats.misses, stats.inserted), (2, 2));
        let second = ms.score_batch(&reqs);
        let stats = ms.row_cache_stats().unwrap();
        assert_eq!(stats.misses, 2, "warm batch must not re-fetch");
        for (a, b) in first.iter().zip(&second) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.probability.to_bits(), b.probability.to_bits());
        }
    }

    #[test]
    fn pool_survives_a_storm_of_poisoned_requests() {
        // 10k mixed requests: valid, wrong-width, unknown users, torn rows.
        let (ms, table) = setup_with_table();
        tear_user(&table, 3);
        let responses = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let errors = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let (r2, e2) = (Arc::clone(&responses), Arc::clone(&errors));
        let pool = ms.serve_pool(
            4,
            move |resp| r2.lock().push(resp),
            move |err| e2.lock().push(err),
        );

        let mut expect_errors = 0usize;
        for i in 0..10_000u64 {
            let fraud = i % 2 == 0;
            let context_val = if fraud { 0.9 } else { 0.1 };
            let request = match i % 5 {
                // Valid, known users.
                0 | 1 => req(i, context_val),
                // Valid, unknown users (cold start).
                2 => ScoreRequest {
                    transferor: 70_000 + i,
                    transferee: 80_000 + i,
                    ..req(i, context_val)
                },
                // Degraded: payer row is torn.
                3 => ScoreRequest {
                    transferor: 3,
                    ..req(i, context_val)
                },
                // Poisoned: wrong context width.
                _ => {
                    expect_errors += 1;
                    ScoreRequest {
                        context: vec![],
                        ..req(i, context_val)
                    }
                }
            };
            pool.send(request).unwrap();
        }
        assert_eq!(pool.live_workers(), 4, "no worker may die under poison");
        pool.shutdown();

        let responses = responses.lock();
        let errors = errors.lock();
        assert_eq!(responses.len() + errors.len(), 10_000, "no request lost");
        assert_eq!(errors.len(), expect_errors);
        assert!(errors
            .iter()
            .all(|e| matches!(e, ServeError::ContextWidth { .. })));
        // Every scoreable request got the right verdict, degraded or not.
        for resp in responses.iter() {
            assert_eq!(
                resp.alert,
                resp.tx_id % 2 == 0,
                "tx {} misjudged (degraded={})",
                resp.tx_id,
                resp.degraded
            );
        }
        assert_eq!(
            ms.degraded_count() as usize,
            responses.iter().filter(|r| r.degraded).count()
        );
        assert!(ms.degraded_count() > 0);
    }

    #[test]
    fn ingest_tick_reports_splits_and_clears_the_whole_row_cache() {
        use titant_alihbase::SplitConfig;
        let table = Arc::new(
            RegionedTable::single(StoreConfig::default())
                .unwrap()
                .with_rebalancing(SplitConfig {
                    split_threshold: Some(50),
                    merge_threshold: 0,
                    max_regions: 8,
                }),
        );
        let ms = ModelServer::with_options(
            table.clone(),
            layout(),
            cached_model(),
            SloConfig::default(),
            Some(RowCacheConfig::default()),
        )
        .unwrap();
        let codec = FeatureCodec {
            embedding_dim: 2,
            payer_width: 2,
            receiver_width: 2,
            velocity_width: 0,
        };
        // Enough users (and enough per-cell write pressure) that the next
        // tick's window is far past the split threshold.
        for user in 1..=16u64 {
            codec
                .put_user(
                    &table,
                    user,
                    &UserFeatures {
                        payer_side: vec![0.1, 0.2],
                        receiver_side: vec![0.3, 0.4],
                        embedding: vec![0.5, 0.6],
                        velocity: Vec::new(),
                    },
                    20170410,
                )
                .unwrap();
        }
        // Warm the cache with both parties of one request.
        ms.score(&req(0, 0.2)).unwrap();
        assert_eq!(ms.row_cache_stats().unwrap().inserted, 2);
        let report = ms
            .ingest_update(
                &[FeatureDelta {
                    user: 1,
                    payer: vec![(0, 0.9)],
                    ..FeatureDelta::default()
                }],
                20170412,
            )
            .unwrap();
        assert_eq!(report.region_splits, 1, "the hot region split on tick");
        assert_eq!(report.region_merges, 0);
        assert_eq!(table.region_count(), 2);
        // User 1's row dropped surgically, then the split flushed the rest
        // (user 2's row) — nothing decoded pre-split may serve post-split.
        assert_eq!(report.invalidated_rows, 2);
        // Post-split scores are bit-identical to a plain server reading the
        // same (now two-region) table.
        let plain = ModelServer::new(table.clone(), layout(), cached_model()).unwrap();
        for i in 0..8u64 {
            let request = req(i, i as f32 / 8.0);
            assert_eq!(
                ms.score(&request).unwrap().probability.to_bits(),
                plain.score(&request).unwrap().probability.to_bits(),
                "tx {i}"
            );
        }
    }

    #[test]
    fn out_of_range_replica_is_a_typed_fault_with_no_resilience_counts() {
        let (ms, table) = setup_with_table();
        let codec = FeatureCodec {
            embedding_dim: 2,
            payer_width: 2,
            receiver_width: 2,
            velocity_width: 0,
        };
        // Pre-fix the table wrapped replica 3 % 1 onto the primary and the
        // read "succeeded", so a hedge the SLO layer recorded as landing on
        // different hardware had actually re-read the same store.
        let err = codec
            .get_user_opts(
                &table,
                1,
                u64::MAX,
                ReadOptions {
                    replica: 3,
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(
            matches!(
                &err,
                ServeError::Fetch { user: 1, fault }
                    if fault.kind == titant_alihbase::FaultKind::NoSuchReplica
                        && fault.replica == 3
            ),
            "{err:?}"
        );
        // No retry/hedge/failover was recorded anywhere: nothing ran.
        let res = ms.resilience();
        assert_eq!((res.retried, res.hedged, res.failovers), (0, 0, 0));
        // And the serving loop itself never requests a replica it does not
        // have: a hedge policy on a single-replica table stays un-hedged.
        assert_eq!(table.replica_count(), 1);
    }
}
