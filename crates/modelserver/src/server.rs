//! The Model Server: feature fetch + scoring + hot model swap + load
//! handling.

use crate::feature_codec::FeatureCodec;
use crate::latency::LatencyRecorder;
use crate::model_file::ModelFile;
use crossbeam::channel::{bounded, Sender};
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Instant;
use titant_alihbase::RegionedTable;
use titant_models::Classifier;

/// A scoring request: the two transfer parties plus the per-transaction
/// context features the Alipay server computes at request time.
#[derive(Debug, Clone)]
pub struct ScoreRequest {
    pub tx_id: u64,
    pub transferor: u64,
    pub transferee: u64,
    pub context: Vec<f32>,
}

/// The MS verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreResponse {
    pub tx_id: u64,
    /// Predicted fraud probability.
    pub probability: f32,
    /// True when the transaction should be interrupted.
    pub alert: bool,
}

/// The serving feature layout: where user-side and context features land in
/// the model's input vector. Must match the training-time column order.
#[derive(Debug, Clone)]
pub struct FeatureLayout {
    /// Width of the basic block (52 in the paper).
    pub n_basic: usize,
    /// Indices of the payer-side values within the basic block.
    pub payer_slots: Vec<usize>,
    /// Indices of the receiver-side values within the basic block.
    pub receiver_slots: Vec<usize>,
    /// Indices of the context values within the basic block.
    pub context_slots: Vec<usize>,
    /// Embedding dims appended per party (0 = model without embeddings).
    pub embedding_dim: usize,
}

impl FeatureLayout {
    /// Total model input width.
    pub fn width(&self) -> usize {
        self.n_basic + 2 * self.embedding_dim
    }
}

/// A model server instance. Cheap to clone (shared internals) — clones act
/// as additional serving replicas over the same store and model.
#[derive(Clone)]
pub struct ModelServer {
    inner: Arc<Inner>,
}

struct Inner {
    model: RwLock<Arc<ModelFile>>,
    table: Arc<RegionedTable>,
    codec: FeatureCodec,
    layout: FeatureLayout,
    latency: LatencyRecorder,
}

impl ModelServer {
    /// Create a server over a feature table with an initial model.
    pub fn new(
        table: Arc<RegionedTable>,
        layout: FeatureLayout,
        model: ModelFile,
    ) -> Self {
        assert_eq!(
            model.n_features,
            layout.width(),
            "model width must match the serving layout"
        );
        assert_eq!(
            layout.payer_slots.len() + layout.receiver_slots.len() + layout.context_slots.len(),
            layout.n_basic,
            "layout slots must cover the basic block exactly"
        );
        let codec = FeatureCodec {
            embedding_dim: layout.embedding_dim,
            payer_width: layout.payer_slots.len(),
            receiver_width: layout.receiver_slots.len(),
        };
        Self {
            inner: Arc::new(Inner {
                model: RwLock::new(Arc::new(model)),
                table,
                codec,
                layout,
                latency: LatencyRecorder::new(),
            }),
        }
    }

    /// Hot-swap the served model ("model files are periodically updated").
    /// In-flight requests keep the old model; new requests see the new one.
    pub fn deploy(&self, model: ModelFile) {
        assert_eq!(
            model.n_features,
            self.inner.layout.width(),
            "model width must match the serving layout"
        );
        *self.inner.model.write() = Arc::new(model);
    }

    /// Version of the currently served model.
    pub fn model_version(&self) -> u64 {
        self.inner.model.read().version
    }

    /// The serving-path latency histogram.
    pub fn latency(&self) -> &LatencyRecorder {
        &self.inner.latency
    }

    /// Score one transaction synchronously: HBase fetch for both parties,
    /// vector assembly, model evaluation.
    pub fn score(&self, req: &ScoreRequest) -> ScoreResponse {
        let start = Instant::now();
        let model = Arc::clone(&self.inner.model.read());
        let layout = &self.inner.layout;
        assert_eq!(
            req.context.len(),
            layout.context_slots.len(),
            "context width mismatch"
        );

        let mut features = vec![0f32; layout.width()];
        // User-side features from the store; absent users (brand-new
        // accounts) serve zeros — the trained models saw the same cold
        // starts.
        let payer = self
            .inner
            .codec
            .get_user(&self.inner.table, req.transferor, u64::MAX);
        let recv = self
            .inner
            .codec
            .get_user(&self.inner.table, req.transferee, u64::MAX);
        if let Some(p) = &payer {
            for (slot, v) in layout.payer_slots.iter().zip(&p.payer_side) {
                features[*slot] = *v;
            }
            features[layout.n_basic..layout.n_basic + layout.embedding_dim]
                .copy_from_slice(&p.embedding);
        }
        if let Some(r) = &recv {
            for (slot, v) in layout.receiver_slots.iter().zip(&r.receiver_side) {
                features[*slot] = *v;
            }
            let base = layout.n_basic + layout.embedding_dim;
            features[base..base + layout.embedding_dim].copy_from_slice(&r.embedding);
        }
        for (slot, v) in layout.context_slots.iter().zip(&req.context) {
            features[*slot] = *v;
        }

        let probability = model.model.predict_proba(&features);
        let resp = ScoreResponse {
            tx_id: req.tx_id,
            probability,
            alert: probability >= model.alert_threshold,
        };
        self.inner.latency.record(start.elapsed());
        resp
    }

    /// Spawn `n_threads` serving workers draining a bounded request queue —
    /// "MS are distributed to satisfy low latency and high service load".
    /// Returns the request sender; responses go to the provided callback.
    pub fn serve_pool(
        &self,
        n_threads: usize,
        on_response: impl Fn(ScoreResponse) + Send + Sync + 'static,
    ) -> Sender<ScoreRequest> {
        let (tx, rx) = bounded::<ScoreRequest>(4096);
        let callback = Arc::new(on_response);
        for _ in 0..n_threads.max(1) {
            let server = self.clone();
            let rx = rx.clone();
            let callback = Arc::clone(&callback);
            std::thread::spawn(move || {
                while let Ok(req) = rx.recv() {
                    callback(server.score(&req));
                }
            });
        }
        tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature_codec::UserFeatures;
    use crate::model_file::ServableModel;
    use titant_alihbase::StoreConfig;
    use titant_models::{Dataset, GbdtConfig};

    /// Layout: 2 payer + 2 receiver + 1 context = 5 basic, embeddings 2/side.
    fn layout() -> FeatureLayout {
        FeatureLayout {
            n_basic: 5,
            payer_slots: vec![0, 1],
            receiver_slots: vec![2, 3],
            context_slots: vec![4],
            embedding_dim: 2,
        }
    }

    /// Model: fraud iff context feature (slot 4) > 0.5 — trivially
    /// learnable, exercises the full assembly path.
    fn model() -> ModelFile {
        let mut d = Dataset::new(9);
        let mut state = 3u64;
        let mut rand01 = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f32 / (1u64 << 31) as f32
        };
        for _ in 0..400 {
            let mut row = [0f32; 9];
            for v in row.iter_mut() {
                *v = rand01();
            }
            let label = (row[4] > 0.5) as u8 as f32;
            d.push_row(&row, label);
        }
        let gbdt = GbdtConfig {
            n_trees: 30,
            subsample: 1.0,
            colsample: 1.0,
            ..Default::default()
        }
        .fit(&d);
        ModelFile {
            version: 20170410,
            alert_threshold: 0.5,
            n_features: 9,
            model: ServableModel::Gbdt(gbdt),
        }
    }

    fn setup() -> ModelServer {
        let table = Arc::new(RegionedTable::single(StoreConfig::default()).unwrap());
        let ms = ModelServer::new(table.clone(), layout(), model());
        let codec = FeatureCodec {
            embedding_dim: 2,
            payer_width: 2,
            receiver_width: 2,
        };
        for user in [1u64, 2] {
            codec
                .put_user(
                    &table,
                    user,
                    &UserFeatures {
                        payer_side: vec![0.1, 0.2],
                        receiver_side: vec![0.3, 0.4],
                        embedding: vec![0.5, 0.6],
                    },
                    20170410,
                )
                .unwrap();
        }
        ms
    }

    fn req(tx_id: u64, context: f32) -> ScoreRequest {
        ScoreRequest {
            tx_id,
            transferor: 1,
            transferee: 2,
            context: vec![context],
        }
    }

    #[test]
    fn scores_and_alerts_on_suspicious_context() {
        let ms = setup();
        let safe = ms.score(&req(1, 0.1));
        let fraud = ms.score(&req(2, 0.9));
        assert!(!safe.alert, "safe tx got p={}", safe.probability);
        assert!(fraud.alert, "fraud tx got p={}", fraud.probability);
        assert!(fraud.probability > safe.probability);
        assert_eq!(ms.latency().count(), 2);
    }

    #[test]
    fn unknown_users_serve_zero_features() {
        let ms = setup();
        let resp = ms.score(&ScoreRequest {
            tx_id: 9,
            transferor: 777,
            transferee: 888,
            context: vec![0.9],
        });
        // Context still drives the decision.
        assert!(resp.alert);
    }

    #[test]
    fn hot_swap_changes_version_not_availability() {
        let ms = setup();
        assert_eq!(ms.model_version(), 20170410);
        let mut m2 = model();
        m2.version = 20170411;
        ms.deploy(m2);
        assert_eq!(ms.model_version(), 20170411);
        // Still serving.
        assert!(ms.score(&req(3, 0.9)).alert);
    }

    #[test]
    fn pool_processes_concurrent_load() {
        let ms = setup();
        let hits = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let hits2 = Arc::clone(&hits);
        let tx = ms.serve_pool(4, move |resp| hits2.lock().push(resp.tx_id));
        for i in 0..100 {
            tx.send(req(i, if i % 2 == 0 { 0.9 } else { 0.1 })).unwrap();
        }
        drop(tx);
        // Wait for drain.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while hits.lock().len() < 100 && Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(hits.lock().len(), 100);
    }

    #[test]
    #[should_panic(expected = "model width")]
    fn mismatched_model_rejected() {
        let table = Arc::new(RegionedTable::single(StoreConfig::default()).unwrap());
        let mut m = model();
        m.n_features = 3;
        ModelServer::new(table, layout(), m);
    }
}
