//! Sharded, capacity-bounded row cache for decoded user features.
//!
//! Sits in front of [`crate::FeatureCodec::get_user`] on the serving hot
//! path. Keys are `(user, as_of)` so a versioned read never aliases a
//! latest read. Two rules keep it correct:
//!
//! * **Invalidation on version bumps** — the server clears the cache on
//!   every [`crate::ModelServer::deploy`] and callers that upload a new
//!   feature version must call
//!   [`crate::ModelServer::invalidate_row_cache`]; cached decodes are only
//!   valid for an immutable snapshot.
//! * **Never filled from degraded reads** — only clean, fully decoded rows
//!   are inserted. A torn/faulted read must stay an error (and degrade)
//!   every time it happens, not be papered over by a stale clean entry —
//!   and a torn decode must never be served to a later healthy request.
//!
//! Sharding bounds lock contention: each shard is an independent
//! `Mutex<HashMap + FIFO queue>`, and batch lookups take each shard's lock
//! at most once.
//!
//! Payloads are `Arc<UserFeatures>`: a hit hands back a pointer clone, not
//! a deep copy of the embedding/velocity vectors, so the per-request cost
//! of a hot user is a refcount bump regardless of feature width. Entries
//! are immutable once inserted (first write wins), so sharing is safe.

use crate::feature_codec::UserFeatures;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache geometry.
#[derive(Debug, Clone)]
pub struct RowCacheConfig {
    /// Total cached rows across all shards (0 disables caching: every
    /// lookup misses and inserts are dropped).
    pub capacity: usize,
    /// Number of independent shards (clamped to at least 1).
    pub shards: usize,
}

impl Default for RowCacheConfig {
    fn default() -> Self {
        Self {
            capacity: 4096,
            shards: 8,
        }
    }
}

/// Counters for observability (relaxed atomics, monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RowCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserted: u64,
    pub evicted: u64,
    pub invalidations: u64,
}

impl RowCacheStats {
    /// Hit ratio over all lookups so far (0.0 when none).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type Key = (u64, u64);

#[derive(Default)]
struct Shard {
    /// `None` caches a confirmed-absent user (a clean read of an empty
    /// row), distinct from "not cached".
    map: HashMap<Key, Option<Arc<UserFeatures>>>,
    /// FIFO insertion order for eviction.
    order: VecDeque<Key>,
}

/// The cache proper. Cheap to share behind the server's `Arc`.
pub struct RowCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserted: AtomicU64,
    evicted: AtomicU64,
    invalidations: AtomicU64,
}

/// SplitMix64 — maps user ids onto shards without clustering sequential ids.
fn shard_hash(user: u64) -> u64 {
    let mut z = user.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RowCache {
    /// Build from a config.
    pub fn new(config: RowCacheConfig) -> Self {
        let shards = config.shards.max(1);
        // Round the per-shard budget up so any nonzero capacity caches at
        // least one row per shard; only capacity 0 disables the cache.
        let per_shard_cap = if config.capacity == 0 {
            0
        } else {
            config.capacity.div_ceil(shards)
        };
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserted: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, user: u64) -> usize {
        (shard_hash(user) % self.shards.len() as u64) as usize
    }

    /// Look up one `(user, as_of)` entry. Outer `None` = miss; inner
    /// `Option` is the cached decode (`None` = user confirmed absent).
    pub fn get(&self, user: u64, as_of: u64) -> Option<Option<Arc<UserFeatures>>> {
        let shard = self.shards[self.shard_of(user)].lock();
        match shard.map.get(&(user, as_of)) {
            Some(cached) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(cached.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a *clean* decode. First write wins: a concurrent duplicate
    /// insert is dropped, so cached contents never flap. Callers must not
    /// insert results of degraded (torn/faulted) reads.
    pub fn insert(&self, user: u64, as_of: u64, features: Option<Arc<UserFeatures>>) {
        if self.per_shard_cap == 0 {
            return;
        }
        let mut shard = self.shards[self.shard_of(user)].lock();
        self.insert_locked(&mut shard, (user, as_of), features);
    }

    fn insert_locked(&self, shard: &mut Shard, key: Key, features: Option<Arc<UserFeatures>>) {
        if shard.map.contains_key(&key) {
            return;
        }
        while shard.map.len() >= self.per_shard_cap {
            match shard.order.pop_front() {
                Some(oldest) => {
                    shard.map.remove(&oldest);
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        shard.map.insert(key, features);
        shard.order.push_back(key);
        self.inserted.fetch_add(1, Ordering::Relaxed);
    }

    /// Batched lookup: group users by shard and take each shard lock once.
    /// Result slots mirror `users` (outer `None` = miss).
    pub fn get_batch(&self, users: &[u64], as_of: u64) -> Vec<Option<Option<Arc<UserFeatures>>>> {
        let mut out: Vec<Option<Option<Arc<UserFeatures>>>> = vec![None; users.len()];
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, &user) in users.iter().enumerate() {
            by_shard[self.shard_of(user)].push(i);
        }
        let mut hits = 0u64;
        let mut misses = 0u64;
        for (shard_idx, indices) in by_shard.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let shard = self.shards[shard_idx].lock();
            for &i in indices {
                match shard.map.get(&(users[i], as_of)) {
                    Some(cached) => {
                        hits += 1;
                        out[i] = Some(cached.clone());
                    }
                    None => misses += 1,
                }
            }
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        out
    }

    /// Batched insert of clean decodes, one lock acquisition per shard.
    pub fn insert_batch(&self, entries: Vec<(u64, u64, Option<Arc<UserFeatures>>)>) {
        if self.per_shard_cap == 0 {
            return;
        }
        let mut by_shard: Vec<Vec<(Key, Option<Arc<UserFeatures>>)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (user, as_of, features) in entries {
            by_shard[self.shard_of(user)].push(((user, as_of), features));
        }
        for (shard_idx, batch) in by_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut shard = self.shards[shard_idx].lock();
            for (key, features) in batch {
                self.insert_locked(&mut shard, key, features);
            }
        }
    }

    /// Drop every cached entry for one user (all `as_of` variants).
    ///
    /// This is the streaming-update path: a
    /// [`crate::ModelServer::ingest_update`] patches one user's row, so
    /// only that user's decodes can be stale — the rest of the cache stays
    /// hot. Touches exactly one shard lock. Returns how many entries were
    /// dropped.
    pub fn invalidate_user(&self, user: u64) -> usize {
        let mut shard = self.shards[self.shard_of(user)].lock();
        let before = shard.map.len();
        shard.map.retain(|&(u, _), _| u != user);
        let dropped = before - shard.map.len();
        if dropped > 0 {
            // Drop the user's keys from the FIFO queue too: a ghost key
            // left behind would later pop without a matching map entry and
            // silently shrink the shard's effective capacity accounting.
            shard.order.retain(|&(u, _)| u != user);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        dropped
    }

    /// Drop every entry (deploy / feature-upload version bump).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.map.clear();
            shard.order.clear();
        }
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> RowCacheStats {
        RowCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserted: self.inserted.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats(x: f32) -> Option<Arc<UserFeatures>> {
        Some(Arc::new(UserFeatures {
            payer_side: vec![x],
            receiver_side: vec![x * 2.0],
            embedding: vec![x; 2],
            velocity: Vec::new(),
        }))
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = RowCache::new(RowCacheConfig::default());
        assert!(cache.get(7, u64::MAX).is_none());
        cache.insert(7, u64::MAX, feats(1.0));
        assert_eq!(cache.get(7, u64::MAX), Some(feats(1.0)));
        // Different as_of is a different entry.
        assert!(cache.get(7, 5).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
    }

    #[test]
    fn absent_user_is_cached_distinctly_from_miss() {
        let cache = RowCache::new(RowCacheConfig::default());
        cache.insert(9, u64::MAX, None);
        assert_eq!(cache.get(9, u64::MAX), Some(None));
    }

    #[test]
    fn capacity_is_bounded_fifo() {
        let cache = RowCache::new(RowCacheConfig {
            capacity: 4,
            shards: 1,
        });
        for user in 0..10u64 {
            cache.insert(user, 1, feats(user as f32));
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().evicted, 6);
        // The newest entries survive.
        assert!(cache.get(9, 1).is_some());
        assert!(cache.get(0, 1).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = RowCache::new(RowCacheConfig {
            capacity: 0,
            shards: 4,
        });
        cache.insert(1, 1, feats(1.0));
        assert!(cache.get(1, 1).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn first_insert_wins() {
        let cache = RowCache::new(RowCacheConfig::default());
        cache.insert(3, 1, feats(1.0));
        cache.insert(3, 1, feats(2.0));
        assert_eq!(cache.get(3, 1), Some(feats(1.0)));
        assert_eq!(cache.stats().inserted, 1);
    }

    #[test]
    fn clear_invalidates_everything() {
        let cache = RowCache::new(RowCacheConfig::default());
        for user in 0..20u64 {
            cache.insert(user, 1, feats(user as f32));
        }
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 1);
        assert!(cache.get(5, 1).is_none());
    }

    #[test]
    fn invalidate_user_drops_only_that_user() {
        let cache = RowCache::new(RowCacheConfig {
            capacity: 64,
            shards: 2,
        });
        cache.insert(7, u64::MAX, feats(1.0));
        cache.insert(7, 5, feats(2.0));
        cache.insert(8, u64::MAX, feats(3.0));
        assert_eq!(cache.invalidate_user(7), 2);
        assert!(cache.get(7, u64::MAX).is_none());
        assert!(cache.get(7, 5).is_none());
        assert_eq!(cache.get(8, u64::MAX), Some(feats(3.0)));
        assert_eq!(cache.stats().invalidations, 1);
        // Invalidating an uncached user is a counted-free no-op.
        assert_eq!(cache.invalidate_user(999), 0);
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_user_leaves_no_ghost_keys_in_eviction_order() {
        let cache = RowCache::new(RowCacheConfig {
            capacity: 3,
            shards: 1,
        });
        cache.insert(1, 1, feats(1.0));
        cache.insert(2, 1, feats(2.0));
        cache.insert(3, 1, feats(3.0));
        cache.invalidate_user(1);
        // Refill to capacity; the eviction loop must not burn pops on the
        // invalidated user's ghost key.
        cache.insert(4, 1, feats(4.0));
        cache.insert(5, 1, feats(5.0));
        assert_eq!(cache.len(), 3);
        // FIFO order without ghosts: 2 is the oldest survivor and must be
        // the one evicted by the insert of 5.
        assert!(cache.get(2, 1).is_none());
        assert!(cache.get(3, 1).is_some());
        assert!(cache.get(4, 1).is_some());
        assert!(cache.get(5, 1).is_some());
        assert_eq!(cache.stats().evicted, 1);
    }

    #[test]
    fn batch_round_trip_matches_single_ops() {
        let cache = RowCache::new(RowCacheConfig {
            capacity: 64,
            shards: 4,
        });
        let users: Vec<u64> = (0..16).collect();
        cache.insert_batch(users.iter().map(|&u| (u, 1, feats(u as f32))).collect());
        let got = cache.get_batch(&users, 1);
        for (&user, slot) in users.iter().zip(&got) {
            assert_eq!(slot.as_ref(), Some(&feats(user as f32)), "user {user}");
            assert_eq!(cache.get(user, 1), feats(user as f32).into());
        }
        // A miss stays an outer None.
        let got = cache.get_batch(&[999], 1);
        assert!(got[0].is_none());
    }
}
