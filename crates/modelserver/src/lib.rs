//! # titant-modelserver — online real-time prediction (MS)
//!
//! The serving half of TitAnt (paper §4.4, Figure 5): when a user initiates
//! a transfer, the Alipay server calls the Model Server; the MS fetches the
//! latest per-user features and node embeddings from Ali-HBase, assembles
//! the full feature vector, scores it with the current model file, and —
//! if the score crosses the alert threshold — tells the Alipay server to
//! interrupt the on-going transaction and notify the transferor.
//!
//! * [`model_file`] — the versioned, serialisable model artefact offline
//!   training ships ("model files are uploaded to online predictor").
//! * [`feature_codec`] — the Figure 7 cell layout: CF `basic` with one
//!   qualifier per user-side feature, CF `embedding` with one qualifier per
//!   dimension, versioned by upload date.
//! * [`server`] — the MS itself: hot-swappable model, HBase reads, a
//!   thread-pooled request loop for load, batched scoring, and latency
//!   histograms.
//! * [`row_cache`] — the opt-in sharded decoded-row cache in front of the
//!   feature fetch; see DESIGN.md §"Serving read path".
//! * [`slo`] — serving SLOs: deadline budgets, bounded retry with
//!   decorrelated-jitter backoff, hedged reads against replicas, and the
//!   resilience counters the chaos gate asserts on. See DESIGN.md §"Fault
//!   model and serving SLOs".
//! * [`alipay`] — the simulated Alipay front end that drives transfers
//!   through the MS and interrupts flagged ones.
//! * [`error`] — the typed [`ServeError`] taxonomy; see DESIGN.md
//!   ("Serving-path failure semantics") for the degradation contract.

// The serving path must never panic on a request: forbid the easy outs in
// shipped code (tests may still unwrap freely).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod alipay;
pub mod error;
pub mod feature_codec;
pub mod latency;
pub mod model_file;
pub mod row_cache;
pub mod server;
pub mod slo;

pub use alipay::{AlipayServer, SessionStats, TransferOutcome};
pub use error::ServeError;
pub use feature_codec::{FeatureCodec, FeatureDelta, UserFeatures};
pub use latency::{LatencyRecorder, LatencySnapshot, Stage, StageSnapshot};
pub use model_file::{ModelFile, ServableModel};
pub use row_cache::{RowCache, RowCacheConfig, RowCacheStats};
pub use server::{
    FeatureLayout, IngestOptions, IngestReport, ModelServer, ScoreRequest, ScoreResponse, ServePool,
};
pub use slo::{Deadline, HedgePolicy, ReqRng, ResilienceSnapshot, RetryPolicy, SloConfig};
