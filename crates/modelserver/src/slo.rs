//! Serving SLO machinery: deadline budgets, bounded retry with
//! decorrelated-jitter backoff, hedged reads, and resilience counters.
//!
//! Everything here is built to keep the serving path **deterministic under
//! chaos**: backoff jitter comes from a per-request seeded [`ReqRng`]
//! (never wall-clock entropy), and deadline decisions charge only
//! *simulated* time (injected latency and backoff pauses) against the
//! budget, so the same seed produces the same retry/hedge/deadline
//! outcomes regardless of scheduler timing or worker count. Real sleeps
//! still happen — the latency histograms stay honest — but they never
//! feed a decision.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// SplitMix64 finalizer shared by the per-request RNG.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny seeded RNG owned by one request. Seeded from
/// `SloConfig::seed ^ tx_id`, so a request draws the same jitter sequence
/// no matter which worker serves it or in what order.
#[derive(Debug, Clone)]
pub struct ReqRng {
    state: u64,
}

impl ReqRng {
    /// Seed the stream.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }
}

/// Bounded retry with decorrelated-jitter backoff (the AWS architecture
/// blog's "decorrelated jitter": each pause is uniform in
/// `[base, 3 * previous]`, clamped to `cap`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed per logical fetch (attempt 0 is not a retry).
    pub max_retries: u32,
    /// Lower bound of every backoff pause, and the first pause's seed.
    pub base: Duration,
    /// Upper clamp on any single pause.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            base: Duration::from_micros(100),
            cap: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// Next backoff pause given the previous one, with jitter drawn from
    /// the request's seeded RNG.
    pub fn backoff(&self, prev: Duration, rng: &mut ReqRng) -> Duration {
        let lo = self.base.as_nanos() as u64;
        let hi = (prev.as_nanos() as u64).saturating_mul(3).max(lo + 1);
        let pick = lo + rng.next_u64() % (hi - lo);
        Duration::from_nanos(pick).min(self.cap)
    }
}

/// Hedged-read policy: when the primary read has absorbed `after` of
/// injected latency without returning, abandon it and race a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgePolicy {
    /// Latency threshold that triggers the hedge (pick a high quantile of
    /// the observed fetch latency, e.g. p99).
    pub after: Duration,
}

/// Per-server SLO configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloConfig {
    /// Simulated-time budget per request; `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Retry policy for transient storage errors.
    pub retry: RetryPolicy,
    /// Hedge policy; `None` (or a single-replica table) disables hedging.
    pub hedge: Option<HedgePolicy>,
    /// Seed mixed with the transaction id for per-request jitter.
    pub seed: u64,
}

/// One request's deadline budget, charged in **simulated** time only
/// (injected read latency and backoff pauses), so deadline outcomes are a
/// pure function of the fault plan — never of scheduler timing.
#[derive(Debug, Clone)]
pub struct Deadline {
    budget: Option<Duration>,
    charged: Duration,
}

impl Deadline {
    /// A fresh budget (`None` = unlimited).
    pub fn new(budget: Option<Duration>) -> Self {
        Self {
            budget,
            charged: Duration::ZERO,
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> Option<Duration> {
        self.budget
    }

    /// Simulated time consumed so far.
    pub fn charged(&self) -> Duration {
        self.charged
    }

    /// Consume part of the budget.
    pub fn charge(&mut self, d: Duration) {
        self.charged += d;
    }

    /// True once the charged time has reached the budget.
    pub fn exceeded(&self) -> bool {
        self.budget.is_some_and(|b| self.charged >= b)
    }

    /// Budget left (`None` = unlimited).
    pub fn remaining(&self) -> Option<Duration> {
        self.budget.map(|b| b.saturating_sub(self.charged))
    }
}

/// Monotonic resilience counters a [`crate::ModelServer`] accumulates.
#[derive(Debug, Default)]
pub struct ResilienceCounters {
    retried: AtomicU64,
    hedged: AtomicU64,
    failovers: AtomicU64,
    deadline_exceeded: AtomicU64,
    shed: AtomicU64,
    write_retried: AtomicU64,
    write_retries_exhausted: AtomicU64,
}

impl ResilienceCounters {
    /// A transient fault was retried.
    pub fn record_retry(&self) {
        self.retried.fetch_add(1, Ordering::Relaxed);
    }

    /// A slow primary was hedged to a replica.
    pub fn record_hedge(&self) {
        self.hedged.fetch_add(1, Ordering::Relaxed);
    }

    /// An unavailable replica was failed over.
    pub fn record_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// A request ran out of deadline budget.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was shed at the queue.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A faulted ingest write was retried.
    pub fn record_write_retry(&self) {
        self.write_retried.fetch_add(1, Ordering::Relaxed);
    }

    /// An ingest write ran out of retries without being acknowledged.
    pub fn record_write_retries_exhausted(&self) {
        self.write_retries_exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> ResilienceSnapshot {
        ResilienceSnapshot {
            retried: self.retried.load(Ordering::Relaxed),
            hedged: self.hedged.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            write_retried: self.write_retried.load(Ordering::Relaxed),
            write_retries_exhausted: self.write_retries_exhausted.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of the resilience counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceSnapshot {
    /// Transient-fault retries performed.
    pub retried: u64,
    /// Hedged reads issued.
    pub hedged: u64,
    /// Replica failovers performed.
    pub failovers: u64,
    /// Requests that exhausted their deadline budget.
    pub deadline_exceeded: u64,
    /// Requests shed at the queue.
    pub shed: u64,
    /// Ingest write retries performed against write faults.
    pub write_retried: u64,
    /// Ingest calls whose write retries were exhausted unacknowledged.
    pub write_retries_exhausted: u64,
}

impl ResilienceSnapshot {
    /// Per-field delta against an earlier snapshot.
    pub fn since(&self, earlier: &ResilienceSnapshot) -> ResilienceSnapshot {
        ResilienceSnapshot {
            retried: self.retried - earlier.retried,
            hedged: self.hedged - earlier.hedged,
            failovers: self.failovers - earlier.failovers,
            deadline_exceeded: self.deadline_exceeded - earlier.deadline_exceeded,
            shed: self.shed - earlier.shed,
            write_retried: self.write_retried - earlier.write_retried,
            write_retries_exhausted: self.write_retries_exhausted - earlier.write_retries_exhausted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_charges_simulated_time_only() {
        let mut d = Deadline::new(Some(Duration::from_millis(1)));
        assert!(!d.exceeded());
        assert_eq!(d.remaining(), Some(Duration::from_millis(1)));
        d.charge(Duration::from_micros(600));
        assert!(!d.exceeded());
        assert_eq!(d.remaining(), Some(Duration::from_micros(400)));
        d.charge(Duration::from_micros(400));
        assert!(d.exceeded());
        assert_eq!(d.remaining(), Some(Duration::ZERO));

        let mut unlimited = Deadline::new(None);
        unlimited.charge(Duration::from_secs(3600));
        assert!(!unlimited.exceeded());
        assert_eq!(unlimited.remaining(), None);
    }

    #[test]
    fn backoff_is_bounded_and_seed_deterministic() {
        let policy = RetryPolicy::default();
        let run = |seed: u64| -> Vec<Duration> {
            let mut rng = ReqRng::new(seed);
            let mut prev = policy.base;
            (0..16)
                .map(|_| {
                    prev = policy.backoff(prev, &mut rng);
                    prev
                })
                .collect()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed must yield the same pauses");
        assert_ne!(a, run(43), "different seeds should decorrelate");
        for pause in &a {
            assert!(*pause >= policy.base && *pause <= policy.cap, "{pause:?}");
        }
    }

    #[test]
    fn resilience_snapshot_deltas() {
        let c = ResilienceCounters::default();
        c.record_retry();
        c.record_retry();
        c.record_hedge();
        let before = c.snapshot();
        c.record_failover();
        c.record_deadline_exceeded();
        c.record_shed();
        c.record_write_retry();
        c.record_write_retry();
        c.record_write_retries_exhausted();
        let delta = c.snapshot().since(&before);
        assert_eq!(
            delta,
            ResilienceSnapshot {
                retried: 0,
                hedged: 0,
                failovers: 1,
                deadline_exceeded: 1,
                shed: 1,
                write_retried: 2,
                write_retries_exhausted: 1,
            }
        );
    }
}
