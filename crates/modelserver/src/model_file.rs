//! Versioned model files — the artefact the offline stage ships to the MS.

use serde::{Deserialize, Serialize};
use titant_models::{Classifier, Gbdt, IsolationForest, LogisticRegression};

/// Any model the MS can serve. Wraps the concrete types so model files are
/// self-describing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServableModel {
    Gbdt(Gbdt),
    LogisticRegression(LogisticRegression),
    IsolationForest(IsolationForest),
}

impl ServableModel {
    /// Build any engine-specific compiled form eagerly. The GBDT lowers its
    /// trees into the [`titant_models::FlatForest`] here, so the work
    /// happens at load time rather than on the first scored request.
    pub fn precompile(&self) {
        if let ServableModel::Gbdt(m) = self {
            m.flat();
        }
    }
}

impl Classifier for ServableModel {
    fn predict_proba(&self, features: &[f32]) -> f32 {
        match self {
            ServableModel::Gbdt(m) => m.predict_proba(features),
            ServableModel::LogisticRegression(m) => m.predict_proba(features),
            ServableModel::IsolationForest(m) => m.predict_proba(features),
        }
    }

    // Forward explicitly so variants with a specialised batch predictor
    // (the GBDT's chunked one) are used instead of the trait default.
    fn predict_batch(&self, data: &titant_models::Dataset) -> Vec<f32> {
        match self {
            ServableModel::Gbdt(m) => m.predict_batch(data),
            ServableModel::LogisticRegression(m) => m.predict_batch(data),
            ServableModel::IsolationForest(m) => m.predict_batch(data),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            ServableModel::Gbdt(_) => "GBDT",
            ServableModel::LogisticRegression(_) => "LR",
            ServableModel::IsolationForest(_) => "IF",
        }
    }
}

/// A deployable model file: the model plus serving metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelFile {
    /// Upload version, e.g. the training date ("T" in T+1). Monotone.
    pub version: u64,
    /// Alert threshold: scores at or above it interrupt the transaction.
    pub alert_threshold: f32,
    /// Expected feature-vector width (sanity check at load).
    pub n_features: usize,
    /// The model itself.
    pub model: ServableModel,
}

impl ModelFile {
    /// Serialise to bytes (JSON — human-inspectable, stable).
    pub fn to_bytes(&self) -> Result<Vec<u8>, serde_json::Error> {
        serde_json::to_vec(self)
    }

    /// Parse from bytes. The contained model is precompiled before it is
    /// returned, so deployment (not the first transaction) pays the
    /// flat-form lowering cost.
    pub fn from_bytes(data: &[u8]) -> Result<Self, serde_json::Error> {
        let mf: Self = serde_json::from_slice(data)?;
        mf.model.precompile();
        Ok(mf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titant_models::{Dataset, GbdtConfig};

    fn toy_model() -> ModelFile {
        let mut d = Dataset::new(2);
        for i in 0..50 {
            let x = i as f32 / 50.0;
            d.push_row(&[x, 1.0 - x], (x > 0.5) as u8 as f32);
        }
        let gbdt = GbdtConfig {
            n_trees: 5,
            subsample: 1.0,
            colsample: 1.0,
            ..Default::default()
        }
        .fit(&d);
        ModelFile {
            version: 20170410,
            alert_threshold: 0.5,
            n_features: 2,
            model: ServableModel::Gbdt(gbdt),
        }
    }

    #[test]
    fn round_trips_through_bytes() {
        let mf = toy_model();
        let bytes = mf.to_bytes().unwrap();
        let loaded = ModelFile::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.version, mf.version);
        assert_eq!(loaded.n_features, 2);
        // Same predictions after the round trip.
        let p1 = mf.model.predict_proba(&[0.9, 0.1]);
        let p2 = loaded.model.predict_proba(&[0.9, 0.1]);
        assert_eq!(p1, p2);
    }

    /// Satellite: a deserialized model file carries a *compiled* flat
    /// forest (no lowering on the request path), and its scores match the
    /// pre-serialization model bit for bit — including NaN feature rows,
    /// where routing must stay NaN-left.
    #[test]
    fn loaded_model_is_precompiled_and_bit_identical() {
        let mf = toy_model();
        let bytes = mf.to_bytes().unwrap();
        let loaded = ModelFile::from_bytes(&bytes).unwrap();
        let ServableModel::Gbdt(loaded_gbdt) = &loaded.model else {
            panic!("round trip changed the model variant");
        };
        assert!(
            loaded_gbdt.is_compiled(),
            "from_bytes must precompile the flat forest"
        );
        let probes: [[f32; 2]; 6] = [
            [0.9, 0.1],
            [0.1, 0.9],
            [0.5, 0.5],
            [f32::NAN, 0.3],
            [0.7, f32::NAN],
            [f32::NAN, f32::NAN],
        ];
        for row in &probes {
            assert_eq!(
                mf.model.predict_proba(row).to_bits(),
                loaded.model.predict_proba(row).to_bits(),
                "row {row:?} diverged across the serialization round trip"
            );
        }
        let mut batch = Dataset::new(2);
        for row in &probes {
            batch.push_row(row, 0.0);
        }
        let before: Vec<u32> = mf
            .model
            .predict_batch(&batch)
            .iter()
            .map(|p| p.to_bits())
            .collect();
        let after: Vec<u32> = loaded
            .model
            .predict_batch(&batch)
            .iter()
            .map(|p| p.to_bits())
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn corrupt_bytes_are_rejected() {
        assert!(ModelFile::from_bytes(b"not a model").is_err());
    }

    #[test]
    fn servable_model_names() {
        let mf = toy_model();
        assert_eq!(mf.model.name(), "GBDT");
    }
}
