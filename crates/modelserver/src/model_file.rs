//! Versioned model files — the artefact the offline stage ships to the MS.

use serde::{Deserialize, Serialize};
use titant_models::{Classifier, Gbdt, IsolationForest, LogisticRegression};

/// Any model the MS can serve. Wraps the concrete types so model files are
/// self-describing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServableModel {
    Gbdt(Gbdt),
    LogisticRegression(LogisticRegression),
    IsolationForest(IsolationForest),
}

impl Classifier for ServableModel {
    fn predict_proba(&self, features: &[f32]) -> f32 {
        match self {
            ServableModel::Gbdt(m) => m.predict_proba(features),
            ServableModel::LogisticRegression(m) => m.predict_proba(features),
            ServableModel::IsolationForest(m) => m.predict_proba(features),
        }
    }

    // Forward explicitly so variants with a specialised batch predictor
    // (the GBDT's chunked one) are used instead of the trait default.
    fn predict_batch(&self, data: &titant_models::Dataset) -> Vec<f32> {
        match self {
            ServableModel::Gbdt(m) => m.predict_batch(data),
            ServableModel::LogisticRegression(m) => m.predict_batch(data),
            ServableModel::IsolationForest(m) => m.predict_batch(data),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            ServableModel::Gbdt(_) => "GBDT",
            ServableModel::LogisticRegression(_) => "LR",
            ServableModel::IsolationForest(_) => "IF",
        }
    }
}

/// A deployable model file: the model plus serving metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelFile {
    /// Upload version, e.g. the training date ("T" in T+1). Monotone.
    pub version: u64,
    /// Alert threshold: scores at or above it interrupt the transaction.
    pub alert_threshold: f32,
    /// Expected feature-vector width (sanity check at load).
    pub n_features: usize,
    /// The model itself.
    pub model: ServableModel,
}

impl ModelFile {
    /// Serialise to bytes (JSON — human-inspectable, stable).
    pub fn to_bytes(&self) -> Result<Vec<u8>, serde_json::Error> {
        serde_json::to_vec(self)
    }

    /// Parse from bytes.
    pub fn from_bytes(data: &[u8]) -> Result<Self, serde_json::Error> {
        serde_json::from_slice(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titant_models::{Dataset, GbdtConfig};

    fn toy_model() -> ModelFile {
        let mut d = Dataset::new(2);
        for i in 0..50 {
            let x = i as f32 / 50.0;
            d.push_row(&[x, 1.0 - x], (x > 0.5) as u8 as f32);
        }
        let gbdt = GbdtConfig {
            n_trees: 5,
            subsample: 1.0,
            colsample: 1.0,
            ..Default::default()
        }
        .fit(&d);
        ModelFile {
            version: 20170410,
            alert_threshold: 0.5,
            n_features: 2,
            model: ServableModel::Gbdt(gbdt),
        }
    }

    #[test]
    fn round_trips_through_bytes() {
        let mf = toy_model();
        let bytes = mf.to_bytes().unwrap();
        let loaded = ModelFile::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.version, mf.version);
        assert_eq!(loaded.n_features, 2);
        // Same predictions after the round trip.
        let p1 = mf.model.predict_proba(&[0.9, 0.1]);
        let p2 = loaded.model.predict_proba(&[0.9, 0.1]);
        assert_eq!(p1, p2);
    }

    #[test]
    fn corrupt_bytes_are_rejected() {
        assert!(ModelFile::from_bytes(b"not a model").is_err());
    }

    #[test]
    fn servable_model_names() {
        let mf = toy_model();
        assert_eq!(mf.model.name(), "GBDT");
    }
}
