//! Typed errors for the serving path.
//!
//! The Model Server's contract is that a request can be *rejected* or
//! *degraded* but must never take a worker down. Errors split into two
//! classes:
//!
//! * **Request-fatal** — the request itself cannot be scored
//!   ([`ServeError::ContextWidth`], [`ServeError::WorkerPanic`]). The pool
//!   reports these through its error callback and keeps serving.
//! * **Degradable** — the per-user feature fetch failed
//!   ([`ServeError::TornCell`], [`ServeError::TornRow`]). The server falls
//!   back to context-only scoring (zero-filled user slots — exactly the
//!   cold-start input the trained models already saw) and counts the
//!   degradation instead of failing the request.
//!
//! Deployment-time problems ([`ServeError::ModelWidth`],
//! [`ServeError::LayoutSlots`]) are returned from `new`/`deploy` and never
//! unseat a live model.

use std::fmt;

/// Everything that can go wrong on the serving path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request's context vector width does not match the layout.
    ContextWidth {
        /// Transaction the malformed request belonged to.
        tx_id: u64,
        /// Width the serving layout expects.
        expected: usize,
        /// Width the request carried.
        got: usize,
    },
    /// A model's input width does not match the serving layout. Returned
    /// by `new`/`deploy`; the previously deployed model stays live.
    ModelWidth {
        /// Width the serving layout expects.
        expected: usize,
        /// Width the offered model has.
        got: usize,
    },
    /// The layout's payer/receiver/context slots do not cover the basic
    /// block exactly, or point outside it.
    LayoutSlots {
        /// Slots the layout defines.
        covered: usize,
        /// Width of the basic block they must cover.
        n_basic: usize,
    },
    /// A stored cell failed to decode as an `f32` (torn write / corrupt
    /// upload). Degradable: scoring proceeds context-only.
    TornCell {
        /// User whose row held the bad cell.
        user: u64,
        /// `family:qualifier` of the offending cell.
        column: String,
        /// Byte length found (an `f32` cell must be 4 bytes).
        len: usize,
    },
    /// A user row exists but is missing part of its basic block (a torn or
    /// half-uploaded row). Degradable: scoring proceeds context-only.
    TornRow {
        /// User whose row is incomplete.
        user: u64,
        /// Basic-block cells present.
        present: usize,
        /// Basic-block cells expected.
        expected: usize,
    },
    /// A pool worker caught a panic while scoring; the worker survived and
    /// the request was dropped.
    WorkerPanic {
        /// Transaction whose scoring panicked.
        tx_id: u64,
        /// Panic payload, when it was a string.
        message: String,
    },
}

impl ServeError {
    /// True when the server can degrade to context-only scoring instead of
    /// failing the request.
    pub fn is_degradable(&self) -> bool {
        matches!(
            self,
            ServeError::TornCell { .. } | ServeError::TornRow { .. }
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ContextWidth {
                tx_id,
                expected,
                got,
            } => write!(
                f,
                "tx {tx_id}: context width {got} does not match the layout's {expected}"
            ),
            ServeError::ModelWidth { expected, got } => write!(
                f,
                "model width {got} does not match the serving layout's {expected}"
            ),
            ServeError::LayoutSlots { covered, n_basic } => write!(
                f,
                "layout slots cover {covered} positions but the basic block has {n_basic}"
            ),
            ServeError::TornCell { user, column, len } => write!(
                f,
                "user {user}: cell {column} holds {len} bytes, expected 4 (f32)"
            ),
            ServeError::TornRow {
                user,
                present,
                expected,
            } => write!(
                f,
                "user {user}: row holds {present}/{expected} basic cells (torn upload)"
            ),
            ServeError::WorkerPanic { tx_id, message } => {
                write!(f, "tx {tx_id}: scoring worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = ServeError::ContextWidth {
            tx_id: 7,
            expected: 5,
            got: 2,
        };
        assert!(e.to_string().contains("tx 7"));
        assert!(!e.is_degradable());

        let e = ServeError::TornCell {
            user: 42,
            column: "basic:p0".into(),
            len: 3,
        };
        assert!(e.to_string().contains("basic:p0"));
        assert!(e.is_degradable());

        let e = ServeError::TornRow {
            user: 42,
            present: 1,
            expected: 4,
        };
        assert!(e.is_degradable());
        assert!(e.to_string().contains("1/4"));
    }
}
