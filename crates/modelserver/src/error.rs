//! Typed errors for the serving path.
//!
//! The Model Server's contract is that a request can be *rejected* or
//! *degraded* but must never take a worker down. Errors split into two
//! classes:
//!
//! * **Request-fatal** — the request itself cannot be scored
//!   ([`ServeError::ContextWidth`], [`ServeError::WorkerPanic`]). The pool
//!   reports these through its error callback and keeps serving.
//! * **Degradable** — the per-user feature fetch failed
//!   ([`ServeError::TornCell`], [`ServeError::TornRow`],
//!   [`ServeError::Fetch`]). The server falls back to context-only scoring
//!   (zero-filled user slots — exactly the cold-start input the trained
//!   models already saw) and counts the degradation instead of failing the
//!   request.
//! * **SLO outcomes** — the request was resolved without scoring:
//!   [`ServeError::DeadlineExceeded`] (simulated-time budget exhausted by
//!   storage faults) and [`ServeError::Shed`] (queue full under overload).
//!   Counted separately so the chaos gate can prove no request is lost.
//!
//! Deployment-time problems ([`ServeError::ModelWidth`],
//! [`ServeError::LayoutSlots`]) are returned from `new`/`deploy` and never
//! unseat a live model.

use std::fmt;
use std::time::Duration;
use titant_alihbase::ReadFault;

/// Everything that can go wrong on the serving path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request's context vector width does not match the layout.
    ContextWidth {
        /// Transaction the malformed request belonged to.
        tx_id: u64,
        /// Width the serving layout expects.
        expected: usize,
        /// Width the request carried.
        got: usize,
    },
    /// A model's input width does not match the serving layout. Returned
    /// by `new`/`deploy`; the previously deployed model stays live.
    ModelWidth {
        /// Width the serving layout expects.
        expected: usize,
        /// Width the offered model has.
        got: usize,
    },
    /// The layout's payer/receiver/context slots do not cover the basic
    /// block exactly, or point outside it.
    LayoutSlots {
        /// Slots the layout defines.
        covered: usize,
        /// Width of the basic block they must cover.
        n_basic: usize,
    },
    /// A stored cell failed to decode as an `f32` (torn write / corrupt
    /// upload). Degradable: scoring proceeds context-only.
    TornCell {
        /// User whose row held the bad cell.
        user: u64,
        /// `family:qualifier` of the offending cell.
        column: String,
        /// Byte length found (an `f32` cell must be 4 bytes).
        len: usize,
    },
    /// A user row exists but is missing part of its basic block (a torn or
    /// half-uploaded row). Degradable: scoring proceeds context-only.
    TornRow {
        /// User whose row is incomplete.
        user: u64,
        /// Basic-block cells present.
        present: usize,
        /// Basic-block cells expected.
        expected: usize,
    },
    /// A storage read faulted (transient error, replica outage, or a
    /// timed-out slow read). Degradable: the retry/hedge/failover loop
    /// exhausts its options first, then falls back to context-only scoring.
    Fetch {
        /// User whose fetch faulted.
        user: u64,
        /// The classified fault, with the simulated time it consumed.
        fault: ReadFault,
    },
    /// The request's simulated-time deadline budget ran out before both
    /// parties' features could be fetched. Request-fatal and counted
    /// separately from errors — the caller decides the business outcome.
    DeadlineExceeded {
        /// Transaction that ran out of budget.
        tx_id: u64,
        /// The configured budget.
        budget: Duration,
        /// Simulated time charged when the budget ran out (`>= budget`).
        charged: Duration,
    },
    /// The serving queue was full and the request was shed before scoring
    /// (load shedding under overload). Request-fatal by design: shedding
    /// fast beats queueing past the deadline.
    Shed {
        /// Transaction that was shed.
        tx_id: u64,
        /// Queue depth observed at shed time.
        queue_depth: usize,
    },
    /// A pool worker caught a panic while scoring; the worker survived and
    /// the request was dropped.
    WorkerPanic {
        /// Transaction whose scoring panicked.
        tx_id: u64,
        /// Panic payload, when it was a string.
        message: String,
    },
    /// A streaming feature delta referenced a slot outside the serving
    /// layout. The whole ingest call is rejected before any write so the
    /// store never holds a partial update batch.
    DeltaSlot {
        /// User whose delta was malformed.
        user: u64,
        /// Which block the bad index targeted (`payer`/`receiver`/`embedding`).
        block: &'static str,
        /// The out-of-range index.
        index: usize,
        /// Width of that block in the layout.
        width: usize,
    },
    /// A streaming ingest failed in the feature store (I/O on the WAL or a
    /// run file). The batch may be partially durable only at whole-frame
    /// granularity; the caller should retry the whole call.
    Ingest {
        /// The underlying storage error, stringified.
        message: String,
    },
    /// A streaming ingest exhausted its bounded write retries against
    /// injected or real write faults (failed appends, failed fsyncs) and
    /// was never acknowledged. Nothing from the batch is readable; the
    /// caller may retry the whole call — rewriting identical cells is
    /// idempotent.
    IngestRetriesExhausted {
        /// Write attempts made (initial try + retries).
        attempts: u32,
        /// The last write fault, stringified.
        message: String,
    },
}

impl ServeError {
    /// True when the server can degrade to context-only scoring instead of
    /// failing the request.
    pub fn is_degradable(&self) -> bool {
        matches!(
            self,
            ServeError::TornCell { .. } | ServeError::TornRow { .. } | ServeError::Fetch { .. }
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ContextWidth {
                tx_id,
                expected,
                got,
            } => write!(
                f,
                "tx {tx_id}: context width {got} does not match the layout's {expected}"
            ),
            ServeError::ModelWidth { expected, got } => write!(
                f,
                "model width {got} does not match the serving layout's {expected}"
            ),
            ServeError::LayoutSlots { covered, n_basic } => write!(
                f,
                "layout slots cover {covered} positions but the basic block has {n_basic}"
            ),
            ServeError::TornCell { user, column, len } => write!(
                f,
                "user {user}: cell {column} holds {len} bytes, expected 4 (f32)"
            ),
            ServeError::TornRow {
                user,
                present,
                expected,
            } => write!(
                f,
                "user {user}: row holds {present}/{expected} basic cells (torn upload)"
            ),
            ServeError::Fetch { user, fault } => write!(
                f,
                "user {user}: {:?} read fault at region {} replica {} (waited {:?})",
                fault.kind, fault.region, fault.replica, fault.waited
            ),
            ServeError::DeadlineExceeded {
                tx_id,
                budget,
                charged,
            } => write!(
                f,
                "tx {tx_id}: deadline budget {budget:?} exhausted after {charged:?} of simulated waiting"
            ),
            ServeError::Shed { tx_id, queue_depth } => {
                write!(f, "tx {tx_id}: shed at queue depth {queue_depth}")
            }
            ServeError::WorkerPanic { tx_id, message } => {
                write!(f, "tx {tx_id}: scoring worker panicked: {message}")
            }
            ServeError::DeltaSlot {
                user,
                block,
                index,
                width,
            } => write!(
                f,
                "user {user}: delta {block} index {index} outside layout width {width}"
            ),
            ServeError::Ingest { message } => {
                write!(f, "streaming ingest failed in the feature store: {message}")
            }
            ServeError::IngestRetriesExhausted { attempts, message } => {
                write!(
                    f,
                    "streaming ingest unacknowledged after {attempts} write attempts: {message}"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = ServeError::ContextWidth {
            tx_id: 7,
            expected: 5,
            got: 2,
        };
        assert!(e.to_string().contains("tx 7"));
        assert!(!e.is_degradable());

        let e = ServeError::TornCell {
            user: 42,
            column: "basic:p0".into(),
            len: 3,
        };
        assert!(e.to_string().contains("basic:p0"));
        assert!(e.is_degradable());

        let e = ServeError::TornRow {
            user: 42,
            present: 1,
            expected: 4,
        };
        assert!(e.is_degradable());
        assert!(e.to_string().contains("1/4"));
    }

    #[test]
    fn slo_errors_classify_and_display() {
        let e = ServeError::Fetch {
            user: 7,
            fault: ReadFault {
                kind: titant_alihbase::FaultKind::Transient,
                region: 2,
                replica: 1,
                waited: Duration::ZERO,
                injected: Duration::ZERO,
            },
        };
        assert!(e.is_degradable(), "fetch faults degrade after retries");
        assert!(e.to_string().contains("region 2 replica 1"));

        let e = ServeError::DeadlineExceeded {
            tx_id: 9,
            budget: Duration::from_millis(2),
            charged: Duration::from_millis(3),
        };
        assert!(!e.is_degradable());
        assert!(e.to_string().contains("tx 9"));

        let e = ServeError::Shed {
            tx_id: 11,
            queue_depth: 64,
        };
        assert!(!e.is_degradable());
        assert!(e.to_string().contains("queue depth 64"));
    }

    #[test]
    fn ingest_errors_are_request_fatal_and_display() {
        let e = ServeError::DeltaSlot {
            user: 5,
            block: "payer",
            index: 9,
            width: 3,
        };
        assert!(!e.is_degradable(), "a malformed delta must be rejected");
        assert!(e.to_string().contains("payer index 9"));

        let e = ServeError::Ingest {
            message: "disk full".into(),
        };
        assert!(!e.is_degradable());
        assert!(e.to_string().contains("disk full"));

        let e = ServeError::IngestRetriesExhausted {
            attempts: 4,
            message: "injected fsync failure".into(),
        };
        assert!(!e.is_degradable(), "an unacked write must not degrade");
        assert!(e.to_string().contains("4 write attempts"));
        assert!(e.to_string().contains("fsync"));
    }
}
