//! End-to-end: the windowed aggregator flushes velocity deltas through
//! `ModelServer::ingest_update_opts` and the served scores react to a
//! fraud burst within the same tick — the miniature version of the
//! `stream_freshness` bench gate.

use std::sync::Arc;
use titant_alihbase::{RegionedTable, StoreConfig};
use titant_models::{Dataset, GbdtConfig};
use titant_modelserver::{
    FeatureCodec, FeatureLayout, ModelFile, ModelServer, ScoreRequest, ServableModel, UserFeatures,
};
use titant_stream::{brute_force_velocity, TxnEvent, VelocityAggregator, VelocityConfig};

const VERSION: u64 = 20170410;

fn vconfig() -> VelocityConfig {
    VelocityConfig {
        windows: vec![1, 4],
        max_counterparties: 8,
    }
}

fn layout() -> FeatureLayout {
    FeatureLayout {
        n_basic: 5,
        payer_slots: vec![0, 1],
        receiver_slots: vec![2, 3],
        context_slots: vec![4],
        embedding_dim: 0,
        velocity_width: vconfig().width(),
    }
}

/// Model: fraud iff the payer's 1-tick-window txn count (input slot 5,
/// the first velocity slot) is at least 2 — a pure velocity rule, so the
/// score can only move when streaming deltas reach the store.
fn model(width: usize) -> ModelFile {
    let mut d = Dataset::new(width);
    let mut state = 11u64;
    let mut rand01 = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as f32 / (1u64 << 31) as f32
    };
    for _ in 0..500 {
        let mut row = vec![0f32; width];
        for (i, v) in row.iter_mut().enumerate() {
            *v = match i % 3 {
                _ if i < 5 => rand01(),
                0 => (rand01() * 4.0).floor(),   // count-like slots
                1 => (rand01() * 500.0).floor(), // amount-cents-like slots
                _ => (rand01() * 4.0).floor(),   // distinct-like slots
            };
        }
        let label = (row[5] >= 2.0) as u8 as f32;
        d.push_row(&row, label);
    }
    let gbdt = GbdtConfig {
        n_trees: 30,
        subsample: 1.0,
        colsample: 1.0,
        ..Default::default()
    }
    .fit(&d);
    ModelFile {
        version: VERSION,
        alert_threshold: 0.5,
        n_features: width,
        model: ServableModel::Gbdt(gbdt),
    }
}

fn setup() -> (ModelServer, Arc<RegionedTable>, FeatureCodec) {
    let table = Arc::new(RegionedTable::single(StoreConfig::default()).unwrap());
    let lay = layout();
    let codec = FeatureCodec {
        embedding_dim: 0,
        payer_width: 2,
        receiver_width: 2,
        velocity_width: lay.velocity_width,
    };
    let ms = ModelServer::new(table.clone(), lay.clone(), model(lay.width())).unwrap();
    for user in 1u64..=2 {
        codec
            .put_user(
                &table,
                user,
                &UserFeatures {
                    payer_side: vec![0.1, 0.2],
                    receiver_side: vec![0.3, 0.4],
                    embedding: Vec::new(),
                    velocity: Vec::new(),
                },
                VERSION,
            )
            .unwrap();
    }
    (ms, table, codec)
}

fn req(tx_id: u64) -> ScoreRequest {
    ScoreRequest {
        tx_id,
        transferor: 1,
        transferee: 2,
        context: vec![0.1],
    }
}

#[test]
fn burst_becomes_visible_in_served_scores_within_one_tick() {
    let (ms, table, codec) = setup();
    let vcfg = vconfig();
    let mut agg = VelocityAggregator::new(vcfg.clone());
    let mut log: Vec<TxnEvent> = Vec::new();
    let observe = |agg: &mut VelocityAggregator, log: &mut Vec<TxnEvent>, e: TxnEvent| {
        assert!(agg.observe(&e));
        log.push(e);
    };

    // Ticks 0-2: quiet traffic — one outgoing txn per tick from user 1.
    for tick in 0..3u64 {
        observe(
            &mut agg,
            &mut log,
            TxnEvent {
                tick,
                payer: 1,
                payee: 50 + tick,
                amount_cents: 120,
            },
        );
        ms.deploy_tick(&mut agg);
        let r = ms.score(&req(100 + tick)).unwrap();
        assert!(
            !r.alert,
            "quiet tick {tick} must not alert (p={})",
            r.probability
        );
    }

    // Tick 3: fraud burst — five payees in one tick.
    for j in 0..5u64 {
        observe(
            &mut agg,
            &mut log,
            TxnEvent {
                tick: 3,
                payer: 1,
                payee: 200 + j,
                amount_cents: 9_900,
            },
        );
    }
    // Before the flush the served features are still the quiet ones.
    let before = ms.score(&req(200)).unwrap();
    assert!(
        !before.alert,
        "burst not flushed yet (p={})",
        before.probability
    );

    let report = ms.ingest_tick(&mut agg);
    assert_eq!(report.users, 1, "only user 1 changed this tick");
    let after = ms.score(&req(201)).unwrap();
    assert!(
        after.alert,
        "burst must be visible in the very next score (p={})",
        after.probability
    );

    // The stored row matches the aggregator's emission and the oracle.
    let stored = codec.get_user(&table, 1, VERSION).unwrap().unwrap();
    assert_eq!(stored.velocity, agg.emitted_of(1));
    assert_eq!(stored.velocity, brute_force_velocity(&vcfg, &log, 3, 1));

    // Ticks 4-7: traffic stops; the 1-tick window clears immediately, the
    // 4-tick window by tick 7 — and the score falls back with it.
    for tick in 4..8u64 {
        ms.ingest_tick(&mut agg);
        let stored = codec.get_user(&table, 1, VERSION).unwrap().unwrap();
        assert_eq!(stored.velocity, brute_force_velocity(&vcfg, &log, tick, 1));
        let r = ms.score(&req(300 + tick)).unwrap();
        assert!(!r.alert, "decayed tick {tick} must not alert");
    }
    assert_eq!(agg.live_users(), 0, "all window state expired and was GCed");

    // An idle flush with no pending change is still a clean ingest.
    let idle = ms.ingest_tick(&mut agg);
    assert_eq!((idle.users, idle.cells), (0, 0));
}

#[test]
fn velocity_before_the_first_upload_degrades_instead_of_crashing() {
    let (ms, table, codec) = setup();
    let mut agg = VelocityAggregator::new(vconfig());
    // User 7 never got a T+1 upload; the stream still writes them, but
    // their row has no basic block, so until the next full upload the
    // codec reports it torn and the serve path falls back to the
    // context-only degraded score instead of failing the request.
    agg.observe(&TxnEvent {
        tick: 0,
        payer: 7,
        payee: 1,
        amount_cents: 300,
    });
    ms.ingest_tick(&mut agg);
    assert!(codec.get_user(&table, 7, VERSION).is_err());
    let r = ms
        .score(&ScoreRequest {
            tx_id: 9,
            transferor: 7,
            transferee: 2,
            context: vec![0.1],
        })
        .unwrap();
    assert!(r.degraded);

    // The T+1 upload arrives: the row heals and the streamed velocity
    // cells merge with the fresh basic block.
    codec
        .put_user(
            &table,
            7,
            &UserFeatures {
                payer_side: vec![0.1, 0.2],
                receiver_side: vec![0.3, 0.4],
                embedding: Vec::new(),
                velocity: Vec::new(),
            },
            VERSION,
        )
        .unwrap();
    ms.invalidate_row_cache();
    let row = codec.get_user(&table, 7, VERSION).unwrap().unwrap();
    assert_eq!(row.velocity, agg.emitted_of(7));
}

/// Tiny helpers so the test reads as "tick the world": flush the
/// aggregator through the server, panicking on ingest errors.
trait TickExt {
    fn ingest_tick(&self, agg: &mut VelocityAggregator) -> titant_modelserver::IngestReport;
    fn deploy_tick(&self, agg: &mut VelocityAggregator) {
        self.ingest_tick(agg);
    }
}

impl TickExt for ModelServer {
    fn ingest_tick(&self, agg: &mut VelocityAggregator) -> titant_modelserver::IngestReport {
        agg.advance_and_ingest(self, VERSION).unwrap()
    }
}
