//! # titant-stream — windowed streaming velocity features
//!
//! The paper's feature pipeline is T+1: every per-user aggregate is
//! recomputed offline and uploaded once a day, so a fraud burst that
//! starts this morning is invisible to the served model until tomorrow.
//! This crate closes that gap with the standard stream-processing fix
//! (BRIGHT's batch/real-time split, arXiv:2205.13084): **velocity
//! features** — per-user txn count, amount sum, and distinct-counterparty
//! count over short sliding windows — maintained incrementally as
//! transactions arrive and flushed into the serving store between model
//! uploads.
//!
//! ## Determinism discipline
//!
//! The aggregator is keyed by the same **logical tick** clock as the
//! SLO/chaos layer: time only moves when [`VelocityAggregator::advance`]
//! is called, and every emitted [`FeatureDelta`] is a pure function of the
//! observed event sequence. No wall clock, no hashing by address, no
//! iteration-order dependence — replaying a day of traffic produces
//! bit-identical window contents and bit-identical deltas on any machine,
//! which is exactly what the `stream_freshness` bench gates on.
//!
//! ## Windows
//!
//! Each window of length `W` ticks is a ring buffer of `W` per-tick
//! partial aggregates plus running totals, so both `observe` and
//! `advance` are O(1) per window (amortised over evicted entries): the
//! slot that leaves the window is subtracted from the totals and reused
//! for the tick that enters. Distinct counterparties are **bounded
//! exact**: per tick at most [`VelocityConfig::max_counterparties`]
//! distinct payees are recorded (first observed wins); up to that bound
//! the count is exact, and the same rule is applied by the brute-force
//! oracle so the two stay bit-identical.
//!
//! ## Serving integration
//!
//! On each tick advance the aggregator emits [`FeatureDelta`]s into the
//! `velocity` column family (see `FeatureCodec`) through
//! [`ModelServer::ingest_update_opts`], so cache invalidation,
//! write-fault retries, and crash recovery apply to streaming features
//! unchanged. The serving layout carries the slots via
//! `serving_layout_with_velocity`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod window;

pub use window::{
    brute_force_velocity, StreamStats, TxnEvent, VelocityAggregator, VelocityConfig,
    STATS_PER_WINDOW,
};
