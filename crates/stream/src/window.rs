//! The sliding-window velocity aggregator and its brute-force oracle.
//!
//! State is per user, per window: a ring buffer of per-tick partial
//! aggregates plus running totals. Observing an event touches one slot
//! per window; advancing the clock subtracts the slot that leaves each
//! window and reuses it for the tick that enters — O(windows) per event
//! and per tick, independent of window length.

use std::collections::BTreeMap;
use titant_modelserver::{FeatureDelta, IngestOptions, IngestReport, ModelServer, ServeError};

/// Feature slots emitted per window, in order: txn count, amount sum
/// (cents), distinct counterparties.
pub const STATS_PER_WINDOW: usize = 3;

/// Configuration of the velocity windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VelocityConfig {
    /// Window lengths in ticks, e.g. `[1, 60, 1440]` for ~1m/1h/24h under
    /// a one-minute tick. Each must be at least 1.
    pub windows: Vec<u32>,
    /// Per-tick bound on recorded distinct payees (first observed wins).
    /// Up to this bound the distinct count is exact; the brute-force
    /// oracle applies the identical rule.
    pub max_counterparties: usize,
}

impl Default for VelocityConfig {
    fn default() -> Self {
        Self {
            windows: vec![1, 60, 1440],
            max_counterparties: 64,
        }
    }
}

impl VelocityConfig {
    /// Velocity slots per user this config produces — the `velocity_width`
    /// to build the serving layout with.
    pub fn width(&self) -> usize {
        STATS_PER_WINDOW * self.windows.len()
    }
}

/// One transaction on the stream, stamped with the logical tick it
/// arrived in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnEvent {
    /// Logical tick of arrival (the aggregator's clock, not wall time).
    pub tick: u64,
    /// Transferor — the user whose outgoing velocity this event feeds.
    pub payer: u64,
    /// Transferee — counted toward the payer's distinct counterparties.
    pub payee: u64,
    /// Transfer amount in integer cents. Integer so the running window
    /// sums are exact under any add/subtract order; converted to `f32`
    /// only at emission.
    pub amount_cents: u64,
}

/// Monotonic counters the aggregator accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Events accepted into the current tick.
    pub observed: u64,
    /// Events rejected for carrying a tick already closed (backfill).
    pub stale_rejected: u64,
    /// Events rejected for carrying a tick not yet open.
    pub future_rejected: u64,
    /// Ticks closed by [`VelocityAggregator::advance`].
    pub ticks_advanced: u64,
    /// Per-slot updates emitted across all deltas.
    pub slots_emitted: u64,
}

/// Per-tick partial aggregate: one ring slot.
#[derive(Debug, Clone, Default)]
struct Slot {
    count: u64,
    amount: u64,
    /// Distinct payees first observed in this tick, in observation order,
    /// capped at `max_counterparties`.
    payees: Vec<u64>,
}

/// One window's ring of per-tick slots plus running totals.
#[derive(Debug, Clone)]
struct Ring {
    slots: Vec<Slot>,
    count: u64,
    amount: u64,
    /// payee -> number of live slots that recorded it. `len()` is the
    /// window's distinct-counterparty count.
    distinct: BTreeMap<u64, u32>,
}

impl Ring {
    fn new(window: u32) -> Self {
        Self {
            slots: (0..window).map(|_| Slot::default()).collect(),
            count: 0,
            amount: 0,
            distinct: BTreeMap::new(),
        }
    }

    fn observe(&mut self, tick: u64, payee: u64, amount_cents: u64, cap: usize) {
        let idx = (tick % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        slot.count += 1;
        slot.amount += amount_cents;
        self.count += 1;
        self.amount += amount_cents;
        if !slot.payees.contains(&payee) && slot.payees.len() < cap {
            slot.payees.push(payee);
            *self.distinct.entry(payee).or_insert(0) += 1;
        }
    }

    /// Subtract and clear the slot `tick` maps to — called when `tick`
    /// enters the window and its previous occupant (`tick - window`)
    /// leaves.
    fn evict_for(&mut self, tick: u64) {
        let idx = (tick % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        self.count -= slot.count;
        self.amount -= slot.amount;
        for payee in slot.payees.drain(..) {
            if let Some(n) = self.distinct.get_mut(&payee) {
                *n -= 1;
                if *n == 0 {
                    self.distinct.remove(&payee);
                }
            }
        }
        slot.count = 0;
        slot.amount = 0;
    }

    fn is_empty(&self) -> bool {
        self.count == 0 && self.distinct.is_empty()
    }
}

/// Deterministic per-user sliding-window velocity aggregator.
///
/// Drive it with [`Self::observe`] for every event of the current tick,
/// then [`Self::advance`] (or [`Self::advance_and_ingest`]) to close the
/// tick: the windows ending at the closed tick are compared against what
/// was last emitted per user and only the changed slots become
/// [`FeatureDelta`]s. All iteration is over ordered maps, so the emitted
/// sequence is a pure function of the event sequence.
#[derive(Debug)]
pub struct VelocityAggregator {
    config: VelocityConfig,
    tick: u64,
    /// Live window state per user; a user with every window empty is
    /// dropped (after their zeroing delta has been emitted).
    users: BTreeMap<u64, Vec<Ring>>,
    /// The velocity vector last flushed per user; absent = all zeros.
    last_emitted: BTreeMap<u64, Vec<f32>>,
    stats: StreamStats,
}

impl VelocityAggregator {
    /// A fresh aggregator at tick 0.
    ///
    /// # Panics
    /// Panics when `windows` is empty, contains a zero, or
    /// `max_counterparties` is zero.
    pub fn new(config: VelocityConfig) -> Self {
        assert!(!config.windows.is_empty(), "need at least one window");
        assert!(
            config.windows.iter().all(|&w| w > 0),
            "window lengths must be at least 1 tick"
        );
        assert!(config.max_counterparties > 0, "need a distinct bound >= 1");
        Self {
            config,
            tick: 0,
            users: BTreeMap::new(),
            last_emitted: BTreeMap::new(),
            stats: StreamStats::default(),
        }
    }

    /// The config this aggregator was built with.
    pub fn config(&self) -> &VelocityConfig {
        &self.config
    }

    /// The currently open tick: only events stamped with exactly this
    /// tick are accepted.
    pub fn current_tick(&self) -> u64 {
        self.tick
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Users with live window state.
    pub fn live_users(&self) -> usize {
        self.users.len()
    }

    /// Feed one event of the **current** tick. Events stamped with a
    /// closed tick (backfill) or a not-yet-open tick are rejected and
    /// counted — the window contract is "exactly the events observed
    /// while the tick was open", which is what makes replays and the
    /// brute-force oracle bit-identical.
    pub fn observe(&mut self, event: &TxnEvent) -> bool {
        if event.tick < self.tick {
            self.stats.stale_rejected += 1;
            return false;
        }
        if event.tick > self.tick {
            self.stats.future_rejected += 1;
            return false;
        }
        let rings = self
            .users
            .entry(event.payer)
            .or_insert_with(|| self.config.windows.iter().map(|&w| Ring::new(w)).collect());
        for ring in rings.iter_mut() {
            ring.observe(
                event.tick,
                event.payee,
                event.amount_cents,
                self.config.max_counterparties,
            );
        }
        self.stats.observed += 1;
        true
    }

    /// The velocity vector for `user` over the windows ending at the
    /// current tick (what [`Self::advance`] would flush for them now).
    pub fn features_of(&self, user: u64) -> Vec<f32> {
        match self.users.get(&user) {
            Some(rings) => Self::vector_of(rings),
            None => vec![0.0; self.config.width()],
        }
    }

    /// The velocity vector last flushed for `user` (all zeros when the
    /// user has never been flushed, or was last flushed back to zero).
    pub fn emitted_of(&self, user: u64) -> Vec<f32> {
        match self.last_emitted.get(&user) {
            Some(v) => v.clone(),
            None => vec![0.0; self.config.width()],
        }
    }

    fn vector_of(rings: &[Ring]) -> Vec<f32> {
        let mut out = Vec::with_capacity(rings.len() * STATS_PER_WINDOW);
        for ring in rings {
            out.push(ring.count as f32);
            out.push(ring.amount as f32);
            out.push(ring.distinct.len() as f32);
        }
        out
    }

    /// Compute the deltas closing the current tick would flush, without
    /// changing any state: per user, the changed `(slot, value)` pairs
    /// between the windows ending now and what was last emitted. Users
    /// whose activity fully expired get an explicit zeroing delta.
    pub fn pending_deltas(&self) -> Vec<FeatureDelta> {
        let zeros = vec![0.0; self.config.width()];
        let mut deltas = Vec::new();
        // Union of live users and users with a nonzero flushed vector;
        // both maps are ordered, so the merge — and the emitted order —
        // is deterministic.
        let mut users: Vec<u64> = self.users.keys().copied().collect();
        users.extend(self.last_emitted.keys().copied());
        users.sort_unstable();
        users.dedup();
        for user in users {
            let current = match self.users.get(&user) {
                Some(rings) => Self::vector_of(rings),
                None => zeros.clone(),
            };
            let prev = self.last_emitted.get(&user).unwrap_or(&zeros);
            let velocity: Vec<(usize, f32)> = current
                .iter()
                .zip(prev)
                .enumerate()
                .filter(|(_, (c, p))| c.to_bits() != p.to_bits())
                .map(|(i, (c, _))| (i, *c))
                .collect();
            if !velocity.is_empty() {
                deltas.push(FeatureDelta {
                    user,
                    velocity,
                    ..FeatureDelta::default()
                });
            }
        }
        deltas
    }

    /// Commit a flush: fold `deltas` into the last-emitted vectors, close
    /// the tick, evict the slots leaving each window, and drop users with
    /// no remaining state.
    fn commit(&mut self, deltas: &[FeatureDelta]) {
        for d in deltas {
            let v = self
                .last_emitted
                .entry(d.user)
                .or_insert_with(|| vec![0.0; self.config.width()]);
            for &(i, value) in &d.velocity {
                v[i] = value;
            }
            if v.iter().all(|&x| x == 0.0) {
                self.last_emitted.remove(&d.user);
            }
            self.stats.slots_emitted += d.velocity.len() as u64;
        }
        self.tick += 1;
        let next = self.tick;
        self.users.retain(|_, rings| {
            for ring in rings.iter_mut() {
                ring.evict_for(next);
            }
            !rings.iter().all(Ring::is_empty)
        });
        self.stats.ticks_advanced += 1;
    }

    /// Close the current tick: emit the changed velocity slots per user
    /// and open the next tick. An empty tick (no events observed) still
    /// advances the windows, so stale activity keeps expiring.
    pub fn advance(&mut self) -> Vec<FeatureDelta> {
        let deltas = self.pending_deltas();
        self.commit(&deltas);
        deltas
    }

    /// [`Self::advance`], flushing the deltas through
    /// [`ModelServer::ingest_update_opts`] with the closing tick as the
    /// ingest tick — cache invalidation, write-fault retries, and crash
    /// recovery apply to streaming features unchanged. The ingest runs
    /// (and the table ticks) even when no slot changed.
    ///
    /// On an ingest error the aggregator does **not** advance: no delta
    /// has been acknowledged, so the caller can retry the same flush or
    /// tear down without silently losing a tick.
    pub fn advance_and_ingest(
        &mut self,
        server: &ModelServer,
        version: u64,
    ) -> Result<IngestReport, ServeError> {
        let deltas = self.pending_deltas();
        let report =
            server.ingest_update_opts(&deltas, version, IngestOptions { tick: self.tick })?;
        self.commit(&deltas);
        Ok(report)
    }
}

/// Brute-force oracle: recompute `user`'s velocity vector over the
/// windows ending at `as_of_tick` from the raw event log, applying the
/// same per-tick distinct-counterparty bound in the same first-observed
/// order. The `stream_freshness` bench gates on this matching
/// [`VelocityAggregator::features_of`] bit-for-bit at every cut.
pub fn brute_force_velocity(
    config: &VelocityConfig,
    events: &[TxnEvent],
    as_of_tick: u64,
    user: u64,
) -> Vec<f32> {
    let mut out = Vec::with_capacity(config.width());
    for &w in &config.windows {
        let lo = as_of_tick.saturating_sub(u64::from(w) - 1);
        let mut count = 0u64;
        let mut amount = 0u64;
        let mut per_tick: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for e in events {
            if e.payer != user || e.tick < lo || e.tick > as_of_tick {
                continue;
            }
            count += 1;
            amount += e.amount_cents;
            let recorded = per_tick.entry(e.tick).or_default();
            if !recorded.contains(&e.payee) && recorded.len() < config.max_counterparties {
                recorded.push(e.payee);
            }
        }
        let mut distinct: Vec<u64> = per_tick.into_values().flatten().collect();
        distinct.sort_unstable();
        distinct.dedup();
        out.push(count as f32);
        out.push(amount as f32);
        out.push(distinct.len() as f32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(windows: &[u32], cap: usize) -> VelocityConfig {
        VelocityConfig {
            windows: windows.to_vec(),
            max_counterparties: cap,
        }
    }

    fn ev(tick: u64, payer: u64, payee: u64, cents: u64) -> TxnEvent {
        TxnEvent {
            tick,
            payer,
            payee,
            amount_cents: cents,
        }
    }

    /// Apply a delta stream to per-user vectors — the "serving side" view
    /// a replayed delta log reconstructs.
    fn apply(deltas: &[FeatureDelta], view: &mut BTreeMap<u64, Vec<f32>>, width: usize) {
        for d in deltas {
            let v = view.entry(d.user).or_insert_with(|| vec![0.0; width]);
            for &(i, value) in &d.velocity {
                v[i] = value;
            }
        }
    }

    #[test]
    fn counts_amounts_and_distinct_within_one_window() {
        let mut agg = VelocityAggregator::new(cfg(&[4], 8));
        agg.observe(&ev(0, 1, 10, 100));
        agg.observe(&ev(0, 1, 11, 250));
        agg.observe(&ev(0, 1, 10, 50));
        assert_eq!(agg.features_of(1), vec![3.0, 400.0, 2.0]);
        let deltas = agg.advance();
        assert_eq!(deltas.len(), 1);
        assert_eq!(
            deltas[0].velocity,
            vec![(0, 3.0), (1, 400.0), (2, 2.0)],
            "all three slots changed from zero"
        );
        assert_eq!(agg.emitted_of(1), vec![3.0, 400.0, 2.0]);
    }

    #[test]
    fn window_boundary_expiry_is_exact() {
        // Window of 2 ticks: activity at tick 0 must be visible at ticks
        // 0 and 1, gone at tick 2.
        let mut agg = VelocityAggregator::new(cfg(&[2], 8));
        agg.observe(&ev(0, 1, 10, 100));
        assert_eq!(agg.features_of(1), vec![1.0, 100.0, 1.0]);
        agg.advance();
        // Tick 1, empty: the tick-0 event is still inside the window.
        assert_eq!(agg.features_of(1), vec![1.0, 100.0, 1.0]);
        let deltas = agg.advance();
        assert!(deltas.is_empty(), "nothing changed at the tick-1 cut");
        // Tick 2: the event expired; the zeroing delta is emitted and the
        // user's state is dropped.
        assert_eq!(agg.features_of(1), vec![0.0, 0.0, 0.0]);
        let deltas = agg.advance();
        assert_eq!(deltas.len(), 1);
        assert_eq!(
            deltas[0].velocity,
            vec![(0, 0.0), (1, 0.0), (2, 0.0)],
            "expiry must be flushed, not just forgotten"
        );
        assert_eq!(agg.live_users(), 0);
        assert!(agg.advance().is_empty(), "fully quiesced");
    }

    #[test]
    fn backfill_and_future_events_are_rejected_and_counted() {
        let mut agg = VelocityAggregator::new(cfg(&[4], 8));
        agg.observe(&ev(0, 1, 10, 100));
        agg.advance();
        assert!(!agg.observe(&ev(0, 1, 11, 100)), "tick 0 already closed");
        assert!(!agg.observe(&ev(5, 1, 11, 100)), "tick 5 not open yet");
        assert!(agg.observe(&ev(1, 1, 11, 100)));
        let s = agg.stats();
        assert_eq!((s.observed, s.stale_rejected, s.future_rejected), (2, 1, 1));
        // The rejected events left no trace in any window.
        assert_eq!(
            agg.features_of(1),
            brute_force_velocity(&cfg(&[4], 8), &[ev(0, 1, 10, 100), ev(1, 1, 11, 100)], 1, 1)
        );
    }

    #[test]
    fn distinct_counterparties_are_bounded_first_observed_wins() {
        let c = cfg(&[4], 2);
        let mut agg = VelocityAggregator::new(c.clone());
        let events = [
            ev(0, 1, 10, 1),
            ev(0, 1, 11, 1),
            ev(0, 1, 12, 1), // over the bound: not recorded
            ev(0, 1, 10, 1), // repeat of a recorded payee
        ];
        for e in &events {
            agg.observe(e);
        }
        // Count and amount stay exact; distinct saturates at the bound.
        assert_eq!(agg.features_of(1), vec![4.0, 4.0, 2.0]);
        assert_eq!(agg.features_of(1), brute_force_velocity(&c, &events, 0, 1));
        // The bound is per tick: the next tick records fresh payees.
        agg.advance();
        agg.observe(&ev(1, 1, 12, 1));
        assert_eq!(agg.features_of(1), vec![5.0, 5.0, 3.0]);
    }

    #[test]
    fn multi_window_vectors_stack_in_config_order() {
        let c = cfg(&[1, 3], 8);
        let mut agg = VelocityAggregator::new(c.clone());
        let log = [ev(0, 7, 1, 10), ev(1, 7, 2, 20), ev(2, 7, 2, 30)];
        let mut cut = 0usize;
        for tick in 0..3u64 {
            while cut < log.len() && log[cut].tick == tick {
                agg.observe(&log[cut]);
                cut += 1;
            }
            assert_eq!(
                agg.features_of(7),
                brute_force_velocity(&c, &log[..cut], tick, 7),
                "cut at tick {tick}"
            );
            agg.advance();
        }
        // At the tick-2 cut: 1-tick window sees one event, 3-tick window
        // all three with two distinct payees.
        assert_eq!(
            brute_force_velocity(&c, &log, 2, 7),
            vec![1.0, 30.0, 1.0, 3.0, 60.0, 2.0]
        );
    }

    #[test]
    fn replayed_deltas_reconstruct_the_features_at_every_cut() {
        let c = cfg(&[2, 4], 4);
        let mut agg = VelocityAggregator::new(c.clone());
        let mut view: BTreeMap<u64, Vec<f32>> = BTreeMap::new();
        let mut log: Vec<TxnEvent> = Vec::new();
        for tick in 0..12u64 {
            // A deterministic, slightly bursty pattern over 3 users.
            for j in 0..(tick % 4) {
                let e = ev(tick, tick % 3, 10 + j, 100 * (j + 1));
                agg.observe(&e);
                log.push(e);
            }
            let expected: Vec<(u64, Vec<f32>)> = (0..3)
                .map(|u| (u, brute_force_velocity(&c, &log, tick, u)))
                .collect();
            let deltas = agg.advance();
            apply(&deltas, &mut view, c.width());
            for (u, want) in expected {
                let zeros = vec![0.0; c.width()];
                let got = view.get(&u).unwrap_or(&zeros);
                assert_eq!(got, &want, "user {u} at cut {tick}");
            }
        }
    }

    #[test]
    fn replays_are_bit_identical() {
        let run = || {
            let mut agg = VelocityAggregator::new(cfg(&[1, 4], 3));
            let mut emitted = Vec::new();
            for tick in 0..16u64 {
                for j in 0..(tick * 7 % 5) {
                    agg.observe(&ev(tick, (tick + j) % 4, j % 6, 10 + j));
                }
                emitted.push(agg.advance());
            }
            (emitted, agg.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    proptest! {
        /// The aggregator equals the brute-force per-window recompute at
        /// every cut, across random tick streams with empty ticks, window
        /// boundaries, and a tight distinct bound.
        #[test]
        fn matches_brute_force_on_random_streams(
            windows in proptest::collection::vec(1u32..6, 1..4),
            cap in 1usize..4,
            // (payer, payee, amount, events-this-tick gap) stream
            raw in proptest::collection::vec((0u64..4, 0u64..6, 1u64..500, 0u8..4), 0..80),
        ) {
            let c = cfg(&windows, cap);
            let mut agg = VelocityAggregator::new(c.clone());
            let mut log: Vec<TxnEvent> = Vec::new();
            let mut tick = 0u64;
            for (payer, payee, cents, gap) in raw {
                // Advance 0..4 ticks first: gaps produce empty ticks and
                // boundary expiries mid-stream.
                for _ in 0..gap {
                    agg.advance();
                    tick += 1;
                }
                let e = ev(tick, payer, payee, cents);
                agg.observe(&e);
                log.push(e);
                for u in 0..4u64 {
                    prop_assert_eq!(
                        agg.features_of(u),
                        brute_force_velocity(&c, &log, tick, u)
                    );
                }
            }
        }

        /// Replaying the emitted delta log always reconstructs the exact
        /// window vectors, including zeroing on expiry.
        #[test]
        fn delta_log_is_a_faithful_projection(
            raw in proptest::collection::vec((0u64..3, 0u64..5, 1u64..100, 0u8..3), 0..60),
        ) {
            let c = cfg(&[2, 3], 2);
            let mut agg = VelocityAggregator::new(c.clone());
            let mut view: BTreeMap<u64, Vec<f32>> = BTreeMap::new();
            let mut tick = 0u64;
            for (payer, payee, cents, gap) in raw {
                for _ in 0..gap {
                    let pre = (0..3u64).map(|u| agg.features_of(u)).collect::<Vec<_>>();
                    let deltas = agg.advance();
                    apply(&deltas, &mut view, c.width());
                    tick += 1;
                    for (u, want) in (0..3u64).zip(pre) {
                        let zeros = vec![0.0; c.width()];
                        prop_assert_eq!(view.get(&u).unwrap_or(&zeros), &want);
                    }
                }
                agg.observe(&ev(tick, payer, payee, cents));
            }
        }
    }
}
